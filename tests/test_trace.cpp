// Tests for ptb::trace — the event tracer (ring buffers, overflow policy,
// Chrome JSON serialization) and the metrics registry, plus an end-to-end
// check that a traced 4-processor run emits well-formed JSON with the
// expected track structure and does not perturb the virtual results.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"
#include "json_checker.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace ptb {
namespace {

using testutil::JsonChecker;

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, 2.5, "x\"y", true, null]})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a": )").valid());
  EXPECT_FALSE(JsonChecker(R"([1, 2],)").valid());
  EXPECT_FALSE(JsonChecker("").valid());
}

// --- Tracer ---

TEST(Tracer, RecordsSpansAndInstants) {
  trace::Tracer t(2);
  t.span(0, trace::kCatPhase, "treebuild", 100, 250);
  t.instant(1, trace::kCatMem, "read-miss", 40, 3);
  ASSERT_EQ(t.events(0).size(), 1u);
  ASSERT_EQ(t.events(1).size(), 1u);
  const trace::Event& s = t.events(0)[0];
  EXPECT_EQ(s.ts_ns, 100u);
  EXPECT_EQ(s.dur_ns, 150u);
  EXPECT_EQ(s.count, 0u);  // span marker
  const trace::Event& i = t.events(1)[0];
  EXPECT_EQ(i.ts_ns, 40u);
  EXPECT_EQ(i.count, 3u);
  EXPECT_EQ(t.total_events(), 2u);
}

TEST(Tracer, OverflowKeepsFirstAndCountsDrops) {
  trace::Tracer t(1, /*capacity_per_proc=*/4);
  for (std::uint64_t k = 0; k < 10; ++k)
    t.instant(0, trace::kCatSched, "tick", k);
  EXPECT_EQ(t.events(0).size(), 4u);
  EXPECT_EQ(t.events(0)[0].ts_ns, 0u);  // chronological prefix kept
  EXPECT_EQ(t.events(0)[3].ts_ns, 3u);
  EXPECT_EQ(t.dropped(0), 6u);
}

TEST(Tracer, ClearDropsEvents) {
  trace::Tracer t(1);
  t.instant(0, trace::kCatMem, "x", 1);
  t.clear();
  EXPECT_EQ(t.total_events(), 0u);
  EXPECT_EQ(t.dropped(0), 0u);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  trace::Tracer t(2, 4);
  t.set_clock_domain("virtual");
  t.span(0, trace::kCatPhase, "forces", 0, 1000);
  t.instant(1, trace::kCatMem, "page-fault", 500, 2);
  for (int k = 0; k < 10; ++k) t.instant(1, trace::kCatSched, "tick", k);  // force drops
  const std::string json = t.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("events dropped (buffer full)"), std::string::npos);
  EXPECT_NE(json.find("\"clock_domain\": \"virtual\""), std::string::npos);
}

TEST(Tracer, PathResolutionFlagBeatsEnv) {
  ::setenv("PTB_TRACE", "/tmp/env.json", 1);
  EXPECT_EQ(trace::trace_path_from("/tmp/flag.json"), "/tmp/flag.json");
  EXPECT_EQ(trace::trace_path_from(""), "/tmp/env.json");
  ::unsetenv("PTB_TRACE");
  EXPECT_EQ(trace::trace_path_from(""), "");
}

// --- MetricsRegistry ---

TEST(Metrics, CounterGaugeAndLookup) {
  trace::MetricsRegistry m;
  m.add("time.phase_ns", trace::proc_phase_label(0, "forces"), 100.0);
  m.add("time.phase_ns", trace::proc_phase_label(0, "forces"), 50.0);
  m.add("time.phase_ns", trace::proc_phase_label(1, "forces"), 30.0);
  m.add("time.phase_ns", trace::proc_phase_label(1, "update"), 7.0);
  m.set("run.nprocs", {}, 2.0);
  EXPECT_DOUBLE_EQ(m.value("time.phase_ns", trace::proc_phase_label(0, "forces")), 150.0);
  EXPECT_DOUBLE_EQ(m.value("time.phase_ns", trace::proc_phase_label(3, "forces")), 0.0);
  EXPECT_DOUBLE_EQ(m.sum("time.phase_ns"), 187.0);
  EXPECT_DOUBLE_EQ(m.sum("time.phase_ns", {{"phase", "forces"}}), 180.0);
  EXPECT_DOUBLE_EQ(m.sum("time.phase_ns", {{"proc", "1"}}), 37.0);
  EXPECT_DOUBLE_EQ(m.max("time.phase_ns", {{"phase", "forces"}}), 150.0);
  EXPECT_DOUBLE_EQ(m.value("run.nprocs", {}), 2.0);
}

TEST(Metrics, LabelOrderDoesNotMatter) {
  trace::MetricsRegistry m;
  m.add("x", {{"b", "2"}, {"a", "1"}}, 5.0);
  EXPECT_DOUBLE_EQ(m.value("x", {{"a", "1"}, {"b", "2"}}), 5.0);
}

TEST(Metrics, PrefixNamesDoNotCollide) {
  trace::MetricsRegistry m;
  m.add("time.phase", {}, 1.0);
  m.add("time.phase_ns", {}, 2.0);
  EXPECT_DOUBLE_EQ(m.sum("time.phase"), 1.0);
  EXPECT_DOUBLE_EQ(m.sum("time.phase_ns"), 2.0);
}

TEST(Metrics, DistributionsMergeAcrossCells) {
  trace::MetricsRegistry m;
  Distribution d0, d1;
  d0.add(10.0);
  d0.add(20.0);
  d1.add(30.0);
  m.record_all("sync.lock_wait_event_ns", trace::proc_label(0), d0);
  m.record_all("sync.lock_wait_event_ns", trace::proc_label(1), d1);
  m.record("sync.lock_wait_event_ns", trace::proc_label(1), 40.0);
  const Distribution all = m.merged("sync.lock_wait_event_ns");
  EXPECT_EQ(all.count(), 4u);
  EXPECT_DOUBLE_EQ(all.stat().mean(), 25.0);
  EXPECT_DOUBLE_EQ(all.stat().max(), 40.0);
  EXPECT_EQ(m.merged("sync.lock_wait_event_ns", trace::proc_label(0)).count(), 2u);
}

TEST(Metrics, CrossProcDistributionMergePreservesCountsAndQuantiles) {
  // One distribution per (proc, phase) cell, as ingest_sight_metrics and the
  // wait-event metrics produce them; merging across processors must preserve
  // total counts, the exact max, and quantile ordering, and a phase filter
  // must slice across all processors at once.
  trace::MetricsRegistry m;
  std::uint64_t expected = 0;
  double max_sample = 0.0;
  for (int p = 0; p < 4; ++p) {
    Distribution build, forces;
    for (int i = 1; i <= 50; ++i) build.add(static_cast<double>(i * (p + 1)));
    for (int i = 1; i <= 10; ++i) forces.add(static_cast<double>(1000 * (p + 1) + i));
    expected += build.count() + forces.count();
    max_sample = std::max(max_sample, forces.stat().max());
    m.record_all("sight.reuse_dist", trace::proc_phase_label(p, "treebuild"), build);
    m.record_all("sight.reuse_dist", trace::proc_phase_label(p, "forces"), forces);
  }
  const Distribution all = m.merged("sight.reuse_dist");
  EXPECT_EQ(all.count(), expected);
  EXPECT_DOUBLE_EQ(all.stat().max(), max_sample);
  EXPECT_LE(all.p50(), all.p95());
  EXPECT_LE(all.p95(), all.p99());

  const Distribution forces_only = m.merged("sight.reuse_dist", {{"phase", "forces"}});
  EXPECT_EQ(forces_only.count(), 40u);
  EXPECT_GE(forces_only.p50(), 1000.0);
  const Distribution one_proc =
      m.merged("sight.reuse_dist", trace::proc_phase_label(2, "treebuild"));
  EXPECT_EQ(one_proc.count(), 50u);
  EXPECT_DOUBLE_EQ(one_proc.stat().max(), 150.0);
}

TEST(Tracer, FlowEventsPairUpInChromeJson) {
  trace::Tracer t(2);
  t.flow(0, 1, trace::kCatSync, "lock-handoff", 100, 250);
  ASSERT_EQ(t.events(0).size(), 1u);
  ASSERT_EQ(t.events(1).size(), 1u);
  EXPECT_EQ(t.events(0)[0].flow_ph, 's');
  EXPECT_EQ(t.events(1)[0].flow_ph, 'f');
  EXPECT_EQ(t.events(0)[0].flow_id, t.events(1)[0].flow_id);
  EXPECT_NE(t.events(0)[0].flow_id, 0u);

  const std::string json = t.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);  // bind sink to enclosing slice
  EXPECT_NE(json.find("lock-handoff"), std::string::npos);
}

TEST(Tracer, FlowIdsAreUniquePerPairAndResetOnClear) {
  trace::Tracer t(2);
  t.flow(0, 1, trace::kCatSync, "a", 1, 2);
  t.flow(1, 0, trace::kCatSync, "b", 3, 4);
  EXPECT_NE(t.events(0)[0].flow_id, t.events(1)[1].flow_id);
  t.clear();
  t.flow(0, 1, trace::kCatSync, "c", 5, 6);
  EXPECT_EQ(t.events(0)[0].flow_id, 1u);
}

TEST(Metrics, SumWithZeroMatchingFilterIsZero) {
  trace::MetricsRegistry m;
  m.add("sync.lock_acquires", trace::proc_phase_label(0, "treebuild"), 9.0);
  EXPECT_DOUBLE_EQ(m.sum("sync.lock_acquires", {{"phase", "nonesuch"}}), 0.0);
  EXPECT_DOUBLE_EQ(m.sum("sync.lock_acquires", {{"proc", "7"}}), 0.0);
  EXPECT_DOUBLE_EQ(m.sum("no.such.metric"), 0.0);
  EXPECT_DOUBLE_EQ(m.max("no.such.metric"), 0.0);
}

TEST(Metrics, MergedOverEmptyDistributionsIsEmpty) {
  trace::MetricsRegistry m;
  // No matching cells at all.
  EXPECT_EQ(m.merged("sync.lock_wait_event_ns").count(), 0u);
  // Cells exist but hold empty distributions (record_all of a fresh one).
  m.record_all("sync.lock_wait_event_ns", trace::proc_label(0), Distribution{});
  m.record_all("sync.lock_wait_event_ns", trace::proc_label(1), Distribution{});
  const Distribution all = m.merged("sync.lock_wait_event_ns");
  EXPECT_EQ(all.count(), 0u);
  EXPECT_DOUBLE_EQ(all.p50(), 0.0);
  EXPECT_DOUBLE_EQ(all.p99(), 0.0);
  // A WaitSummary over it reports "no events" rather than garbage.
  const WaitSummary w = wait_summary(all);
  EXPECT_EQ(w.events, 0u);
  EXPECT_DOUBLE_EQ(w.p99_s, 0.0);
}

TEST(Metrics, DistributionQuantilesIncludeP50AndP99) {
  Distribution d;
  for (int i = 1; i <= 1000; ++i) d.add(static_cast<double>(i));
  EXPECT_GT(d.p50(), 0.0);
  EXPECT_LE(d.p50(), d.p95());
  EXPECT_LE(d.p95(), d.p99());
  EXPECT_LE(d.p99(), d.stat().max());
}

TEST(MetricsDeathTest, DuplicateRegisterAcrossKindsIsDetected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  trace::MetricsRegistry m;
  m.add("x.count", trace::proc_label(0), 1.0);
  EXPECT_DEATH(m.record("x.count", trace::proc_label(0), 2.0),
               "already registered as a counter/gauge");
  m.record("y.dist", trace::proc_label(0), 1.0);
  EXPECT_DEATH(m.add("y.dist", trace::proc_label(0), 2.0),
               "already registered as a distribution");
  // Same name with *different* labels is a different cell — allowed.
  m.record("x.count", trace::proc_label(1), 3.0);
  EXPECT_EQ(m.merged("x.count", trace::proc_label(1)).count(), 1u);
}

TEST(Metrics, SelectAndDumpAreDeterministic) {
  trace::MetricsRegistry m;
  m.add("c", trace::proc_label(1), 1.0);
  m.add("c", trace::proc_label(0), 2.0);
  const auto entries = m.select("c");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].labels[0].second, "0");  // sorted keys
  EXPECT_EQ(entries[1].labels[0].second, "1");
  const std::string dump = m.dump();
  EXPECT_NE(dump.find("c{proc=0} 2"), std::string::npos);
}

// --- end to end: traced 4-processor run ---

TEST(TraceEndToEnd, FourProcRunProducesValidTraceWithoutPerturbingResults) {
  ExperimentSpec spec;
  spec.platform = "typhoon0_hlrc";  // SVM: exercises page faults/twins/diffs
  spec.algorithm = Algorithm::kOrig;  // locks in the tree-build phase
  spec.n = 1500;
  spec.nprocs = 4;
  spec.warmup_steps = 1;
  spec.measured_steps = 1;

  ExperimentRunner plain_runner;
  const ExperimentResult plain = plain_runner.run(spec);

  trace::Tracer tracer(spec.nprocs);
  spec.tracer = &tracer;
  ExperimentRunner traced_runner;
  const ExperimentResult traced = traced_runner.run(spec);

  // Tracing must be a pure observer of the virtual execution.
  EXPECT_EQ(traced.run.total_ns, plain.run.total_ns);
  EXPECT_EQ(traced.treebuild_locks_total, plain.treebuild_locks_total);
  EXPECT_EQ(traced.mem.page_faults, plain.mem.page_faults);

  EXPECT_EQ(tracer.nprocs(), 4);
  EXPECT_STREQ(tracer.clock_domain(), "virtual");
  int phase_spans = 0, sync_spans = 0, mem_instants = 0;
  for (int p = 0; p < 4; ++p) {
    bool has_phase = false;
    for (const trace::Event& e : tracer.events(p)) {
      // Compare by content: the kCat* pointers are not address-identical
      // across translation units once ASan disables string-literal merging.
      if (std::strcmp(e.cat, trace::kCatPhase) == 0 && e.count == 0) {
        ++phase_spans;
        has_phase = true;
      }
      if (std::strcmp(e.cat, trace::kCatSync) == 0 && e.count == 0) ++sync_spans;
      if (std::strcmp(e.cat, trace::kCatMem) == 0) ++mem_instants;
    }
    EXPECT_TRUE(has_phase) << "proc " << p << " has no phase spans";
  }
  EXPECT_GE(phase_spans, 4 * kNumPhases - 4);  // every measured phase, each proc
  EXPECT_GT(sync_spans, 0);
  EXPECT_GT(mem_instants, 0);

  const std::string json = tracer.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);  // one track per proc
  EXPECT_NE(json.find("treebuild"), std::string::npos);
  EXPECT_NE(json.find("page-fault"), std::string::npos);

  // The registry-derived wait summaries cover the recorded wait spans.
  EXPECT_GT(traced.barrier_wait.events, 0u);
  EXPECT_GE(traced.barrier_wait.max_s, traced.barrier_wait.p95_s);
  EXPECT_GE(traced.barrier_wait.p95_s, 0.0);
}

TEST(TraceEndToEnd, MetricsRegistryIsTheSourceOfScalars) {
  ExperimentSpec spec;
  spec.platform = "origin2000";
  spec.algorithm = Algorithm::kLocal;
  spec.n = 1200;
  spec.nprocs = 4;
  spec.warmup_steps = 1;
  spec.measured_steps = 1;
  ExperimentRunner runner;
  const ExperimentResult r = runner.run(spec);

  ASSERT_FALSE(r.metrics.empty());
  // Scalar conveniences must agree with direct registry queries.
  EXPECT_DOUBLE_EQ(r.metrics.sum("sync.lock_acquires", {{"phase", "treebuild"}}),
                   static_cast<double>(r.treebuild_locks_total));
  EXPECT_DOUBLE_EQ(r.metrics.sum("mem.read_misses"),
                   static_cast<double>(r.mem.read_misses));
  const double total_phase_ns = r.metrics.sum("time.phase_ns");
  EXPECT_GT(total_phase_ns, 0.0);
  // Stall + waits never exceed the phase time that contains them.
  EXPECT_LE(r.metrics.sum("time.mem_stall_ns"), total_phase_ns);
  EXPECT_LE(r.metrics.sum("sync.barrier_wait_ns"), total_phase_ns);
}

}  // namespace
}  // namespace ptb
