// The fiber, thread and parallel scheduler backends implement the same
// virtual-time state machine and must be indistinguishable in every reported
// number: bit-identical virtual clocks, per-phase times, lock-acquire counts
// and wait-time statistics for every algorithm on every platform. This is
// the contract that lets the fast fiber backend replace the thread backend
// everywhere (and the parallel backend overlap unordered sections on real
// host threads, docs/MODEL.md "The lookahead window") while the thread
// backend stays on as a cross-check.
//
// The simulator's virtual times are a function of the actual addresses of
// the registered regions (block-grid alignment, lock hashing — see
// RegionTable and AppState::node_lock), so both backends must run over the
// SAME AppState and builder storage. We snapshot the mutable simulation
// state once after setup and restore it between the two runs; allocation
// addresses then match exactly and any remaining difference is the
// scheduler's fault.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "prof/profile.hpp"
#include "race/race.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/radix.hpp"
#include "treebuild/space.hpp"
#include "treebuild/update.hpp"

namespace ptb {
namespace {

struct BackendRun {
  RunResult run;
  std::vector<std::uint64_t> clocks;
  std::uint64_t races = 0;
};

/// The pre-run values of everything a timestep mutates. Restoring copies
/// values back into the existing containers (capacities are never exceeded,
/// so data() — and therefore every registered region address — is stable).
struct StateSnapshot {
  Bodies bodies;
  std::vector<AlignedVec<std::int32_t>> partition;
  std::vector<std::int32_t> body_slot;
};

StateSnapshot take_snapshot(const AppState& st) {
  return StateSnapshot{st.bodies, st.partition, st.body_slot};
}

void restore_snapshot(AppState& st, const StateSnapshot& snap) {
  std::copy(snap.bodies.begin(), snap.bodies.end(), st.bodies.begin());
  for (std::size_t p = 0; p < st.partition.size(); ++p)
    st.partition[p].assign(snap.partition[p].begin(), snap.partition[p].end());
  std::copy(snap.body_slot.begin(), snap.body_slot.end(), st.body_slot.begin());
  st.tree.root = nullptr;
  for (auto& c : st.tree.created) c.clear();
  for (int i = 0; i < st.tree.nbodies; ++i)
    st.tree.body_leaf[static_cast<std::size_t>(i)].store(nullptr, std::memory_order_relaxed);
  std::fill(st.tree.reduce.begin(), st.tree.reduce.end(), ReduceSlot{});
  std::fill(st.interactions.begin(), st.interactions.end(), 0);
  std::fill(st.interactions_cell.begin(), st.interactions_cell.end(), 0);
  std::fill(st.interactions_body.begin(), st.interactions_body.end(), 0);
  st.storage.global.reset();
  for (auto& pool : st.storage.per_proc) pool.reset();
}

struct RunOpts {
  bool race = false;
  bool prof = false;
  /// Host workers for kParallel's section pool (0 = backend default). Set
  /// to >1 in the matrix tests so real cross-thread overlap is exercised.
  int workers = 4;
};

template <class Builder>
std::vector<BackendRun> run_backends(const std::string& platform, int n, int nprocs,
                                     const std::vector<SimBackend>& backends,
                                     const RunOpts& opts = {}) {
  BHConfig bh;
  bh.n = n;
  AppState st = make_app_state(bh, nprocs);
  const StateSnapshot snap = take_snapshot(st);
  Builder builder(st);
  const RunConfig rc{/*warmup_steps=*/0, /*measured_steps=*/1};
  std::vector<BackendRun> out;
  for (SimBackend backend : backends) {
    restore_snapshot(st, snap);
    SimContext ctx(PlatformSpec::by_name(platform), nprocs, backend,
                   /*race_detect=*/opts.race);
    if (opts.workers > 0) ctx.set_workers(opts.workers);
    prof::Recorder rec;
    if (opts.prof) ctx.set_profiler(&rec);
    BackendRun r;
    r.run = run_simulation(ctx, st, builder, rc);
    for (int p = 0; p < nprocs; ++p) r.clocks.push_back(ctx.clock_ns(p));
    if (const race::RaceReport* rr = ctx.race_report()) r.races = rr->races;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<BackendRun> run_algorithm(Algorithm alg, const std::string& platform, int n,
                                      int nprocs, const std::vector<SimBackend>& backends,
                                      const RunOpts& opts = {}) {
  switch (alg) {
    case Algorithm::kOrig:
      return run_backends<OrigBuilder>(platform, n, nprocs, backends, opts);
    case Algorithm::kLocal:
      return run_backends<LocalBuilder>(platform, n, nprocs, backends, opts);
    case Algorithm::kUpdate:
      return run_backends<UpdateBuilder>(platform, n, nprocs, backends, opts);
    case Algorithm::kPartree:
      return run_backends<PartreeBuilder>(platform, n, nprocs, backends, opts);
    case Algorithm::kSpace:
      return run_backends<SpaceBuilder>(platform, n, nprocs, backends, opts);
    case Algorithm::kRadix:
      return run_backends<RadixBuilder>(platform, n, nprocs, backends, opts);
  }
  PTB_CHECK_MSG(false, "unhandled algorithm");
  return {};
}

void expect_identical(const BackendRun& a, const BackendRun& b) {
  // Virtual completion times, per processor, to the nanosecond.
  EXPECT_EQ(a.clocks, b.clocks);
  EXPECT_EQ(a.run.total_ns, b.run.total_ns);

  ASSERT_EQ(a.run.proc_stats.size(), b.run.proc_stats.size());
  for (std::size_t p = 0; p < a.run.proc_stats.size(); ++p) {
    const ProcStats& x = a.run.proc_stats[p];
    const ProcStats& y = b.run.proc_stats[p];
    SCOPED_TRACE("proc " + std::to_string(p));
    EXPECT_EQ(x.phase_ns, y.phase_ns);
    EXPECT_EQ(x.lock_acquires, y.lock_acquires);
    EXPECT_EQ(x.barrier_wait_ns, y.barrier_wait_ns);
    EXPECT_EQ(x.lock_wait_ns, y.lock_wait_ns);
    EXPECT_EQ(x.barriers, y.barriers);
    EXPECT_EQ(x.fetch_adds, y.fetch_adds);
  }
}

constexpr int kBodies = 2048;
constexpr int kProcs = 8;

// Harness control: restoring the snapshot and re-running the SAME backend
// must reproduce the run exactly. If this fails, the snapshot/restore above
// is incomplete and the cross-backend comparisons prove nothing.
TEST(BackendEquiv, SnapshotRestoreReproducesARun) {
  const auto runs = run_algorithm(Algorithm::kOrig, "paragon", kBodies, kProcs,
                                  {SimBackend::kFibers, SimBackend::kFibers});
  expect_identical(runs[0], runs[1]);
}

TEST(BackendEquiv, ThreadBackendReproducesItself) {
  const auto runs = run_algorithm(Algorithm::kPartree, "challenge", kBodies, kProcs,
                                  {SimBackend::kThreads, SimBackend::kThreads});
  expect_identical(runs[0], runs[1]);
}

TEST(BackendEquiv, FiberBackendReproducesItself) {
  const auto runs = run_algorithm(Algorithm::kPartree, "challenge", kBodies, kProcs,
                                  {SimBackend::kFibers, SimBackend::kFibers});
  expect_identical(runs[0], runs[1]);
}

TEST(BackendEquiv, ParallelBackendReproducesItself) {
  const auto runs = run_algorithm(Algorithm::kSpace, "challenge", kBodies, kProcs,
                                  {SimBackend::kParallel, SimBackend::kParallel});
  expect_identical(runs[0], runs[1]);
}

// A single host worker still goes through the launch/drain machinery; it
// must agree both with the multi-worker pool and with the fiber backend.
TEST(BackendEquiv, ParallelSingleWorkerBitIdentical) {
  RunOpts opts;
  opts.workers = 1;
  const auto runs = run_algorithm(Algorithm::kSpace, "origin2000", kBodies, kProcs,
                                  {SimBackend::kFibers, SimBackend::kParallel}, opts);
  expect_identical(runs[0], runs[1]);
}

// Observer decorators force the sections inline (overlap off) under
// kParallel; the whole run — including the race findings — must still match
// the fiber backend exactly.
TEST(BackendEquiv, ParallelUnderRaceDetectorMatchesFibers) {
  RunOpts opts;
  opts.race = true;
  const auto runs = run_algorithm(Algorithm::kSpace, "challenge", kBodies, kProcs,
                                  {SimBackend::kFibers, SimBackend::kParallel}, opts);
  expect_identical(runs[0], runs[1]);
  EXPECT_EQ(runs[0].races, runs[1].races);
}

TEST(BackendEquiv, ParallelUnderProfilerMatchesFibers) {
  RunOpts opts;
  opts.prof = true;
  const auto runs = run_algorithm(Algorithm::kPartree, "typhoon0_hlrc", kBodies, kProcs,
                                  {SimBackend::kFibers, SimBackend::kParallel}, opts);
  expect_identical(runs[0], runs[1]);
}

struct EquivCase {
  Algorithm alg;
  const char* platform;
};

class BackendEquivP : public ::testing::TestWithParam<EquivCase> {};

TEST_P(BackendEquivP, FiberThreadAndParallelBackendsBitIdentical) {
  const EquivCase c = GetParam();
  const auto runs =
      run_algorithm(c.alg, c.platform, kBodies, kProcs,
                    {SimBackend::kFibers, SimBackend::kThreads, SimBackend::kParallel});
  expect_identical(runs[0], runs[1]);
  expect_identical(runs[0], runs[2]);
}

std::vector<EquivCase> all_cases() {
  std::vector<EquivCase> cases;
  for (Algorithm alg : all_algorithms())
    for (const char* platform :
         {"challenge", "origin2000", "paragon", "typhoon0_hlrc", "typhoon0_sc",
          "numa2020", "simt2020"})
      cases.push_back(EquivCase{alg, platform});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsAllPlatforms, BackendEquivP,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<EquivCase>& info) {
                           return std::string(algorithm_name(info.param.alg)) + "_" +
                                  info.param.platform;
                         });

}  // namespace
}  // namespace ptb
