// The body-migration shadow arena (paper §2.2: bodies physically move
// between per-processor arrays on reassignment).
#include <gtest/gtest.h>

#include "harness/app.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"

namespace ptb {
namespace {

TEST(Migration, InitialSlotsAreOwnerContiguous) {
  BHConfig cfg;
  cfg.n = 1000;
  AppState st = make_app_state(cfg, 4);
  const std::int32_t chunk = st.arena_chunk();
  for (int bi = 0; bi < cfg.n; ++bi) {
    const int owner = st.bodies[static_cast<std::size_t>(bi)].proc;
    const std::int32_t slot = st.body_slot[static_cast<std::size_t>(bi)];
    EXPECT_GE(slot, owner * chunk);
    EXPECT_LT(slot, (owner + 1) * chunk);
  }
}

TEST(Migration, ChargeAddressesLieInArena) {
  BHConfig cfg;
  cfg.n = 500;
  AppState st = make_app_state(cfg, 4);
  for (int bi = 0; bi < cfg.n; ++bi) {
    const Body* addr = st.body_charge(bi);
    EXPECT_GE(addr, st.body_arena.data());
    EXPECT_LT(addr, st.body_arena.data() + st.body_arena.size());
  }
}

TEST(Migration, CostzonesReassignmentMovesSlots) {
  BHConfig cfg;
  cfg.n = 2000;
  AppState st = make_app_state(cfg, 8);
  SimContext ctx(PlatformSpec::ideal(), 8);
  register_common_regions(ctx, st);
  LocalBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) { timestep(rt, st, builder, true); });
  const std::int32_t chunk = st.arena_chunk();
  int migrated = 0;
  for (int bi = 0; bi < cfg.n; ++bi) {
    const int owner = st.bodies[static_cast<std::size_t>(bi)].proc;
    const std::int32_t slot = st.body_slot[static_cast<std::size_t>(bi)];
    // Every body's slot lies in its (new) owner's chunk.
    ASSERT_GE(slot, owner * chunk);
    ASSERT_LT(slot, (owner + 1) * chunk);
    if (owner != bi % 8) ++migrated;  // initial assignment was round-robin
  }
  // Costzones is spatial: the vast majority of bodies changed owner.
  EXPECT_GT(migrated, cfg.n / 2);
}

TEST(Migration, OwnBodyAccessesAreHomeLocalOnSvm) {
  // After a settle step, a processor's integrate-phase traffic hits its own
  // arena chunk: on HLRC those are home pages, so the update phase must be
  // (nearly) free of faults/twins.
  BHConfig cfg;
  cfg.n = 2000;
  AppState st = make_app_state(cfg, 8);
  SimContext ctx(PlatformSpec::typhoon0_hlrc(), 8);
  LocalBuilder builder(st);
  // run_simulation registers the regions itself.
  RunResult res = run_simulation(ctx, st, builder, RunConfig{1, 1});
  // Update phase: pure local compute, orders of magnitude below forces.
  EXPECT_LT(res.phase(Phase::kUpdate), res.phase(Phase::kForces) / 20.0);
}

}  // namespace
}  // namespace ptb
