// The six parallel tree builders: structural invariants, equivalence with
// the sequential reference tree, creator bookkeeping, body->leaf map.
// Parameterized sweep over algorithm x processor count x size x leaf_cap.
#include <gtest/gtest.h>

#include <set>

#include "bh/seqtree.hpp"
#include "bh/verify.hpp"
#include "harness/app.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/dispatch.hpp"

namespace ptb {
namespace {

struct BuildCase {
  Algorithm alg;
  int n;
  int np;
  int leaf_cap;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<BuildCase>& info) {
  return std::string(algorithm_name(info.param.alg)) + "_n" +
         std::to_string(info.param.n) + "_p" + std::to_string(info.param.np) + "_k" +
         std::to_string(info.param.leaf_cap);
}

/// Builds the tree once (one tree-build phase) with the given algorithm.
void run_build(Algorithm alg, AppState& st) {
  SimContext ctx(PlatformSpec::ideal(), st.nprocs);
  register_common_regions(ctx, st);
  with_builder(alg, st, [&](auto& builder) {
    builder.register_regions(ctx);
    ctx.run([&](SimProc& rt) {
      builder.build(rt);
      rt.barrier();
      moments_phase(rt, st);
    });
  });
}

/// Ground-truth tree over the same bodies.
std::uint64_t reference_hash(const AppState& st) {
  NodePool pool;
  pool.init(static_cast<std::size_t>(st.cfg.n) * 2 + 1024);
  Node* root = SeqTree::build(st.bodies, st.cfg, pool);
  return canonical_hash(root, st.bodies);
}

void expect_created_lists_consistent(const AppState& st) {
  // Every reachable alive node appears exactly once in its creator's list.
  std::set<const Node*> reachable;
  std::vector<const Node*> stack{st.tree.root};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    ASSERT_TRUE(reachable.insert(n).second);
    if (n->is_cell(std::memory_order_relaxed))
      for (int o = 0; o < 8; ++o)
        if (const Node* c = n->get_child(o, std::memory_order_relaxed))
          stack.push_back(c);
  }
  std::size_t listed = 0;
  for (int p = 0; p < st.nprocs; ++p) {
    for (const Node* n : st.tree.created[static_cast<std::size_t>(p)]) {
      if (n->dead) continue;
      EXPECT_EQ(n->creator, p);
      EXPECT_TRUE(reachable.count(n)) << "created node not reachable";
      ++listed;
    }
  }
  EXPECT_EQ(listed, reachable.size());
}

void expect_body_leaf_map_correct(const AppState& st) {
  for (int bi = 0; bi < st.cfg.n; ++bi) {
    const Node* leaf = st.tree.leaf_of(bi);
    ASSERT_NE(leaf, nullptr) << "body " << bi << " has no recorded leaf";
    ASSERT_TRUE(leaf->is_leaf(std::memory_order_relaxed));
    bool found = false;
    for (int i = 0; i < leaf->nbodies; ++i)
      if (leaf->bodies[i] == bi) found = true;
    EXPECT_TRUE(found) << "body " << bi << " not in its recorded leaf";
  }
}

class BuilderP : public ::testing::TestWithParam<BuildCase> {};

TEST_P(BuilderP, MatchesSequentialReference) {
  const BuildCase c = GetParam();
  BHConfig cfg;
  cfg.n = c.n;
  cfg.leaf_cap = c.leaf_cap;
  cfg.seed = c.seed;
  AppState st = make_app_state(cfg, c.np);
  run_build(c.alg, st);

  const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg,
                                         /*check_moments=*/true);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.body_count, c.n);
  EXPECT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st))
      << "parallel tree differs structurally from the sequential reference";
  expect_created_lists_consistent(st);
  expect_body_leaf_map_correct(st);
}

std::vector<BuildCase> sweep_cases() {
  std::vector<BuildCase> cases;
  for (Algorithm alg : all_algorithms()) {
    for (int np : {1, 2, 4, 8, 16}) {
      cases.push_back(BuildCase{alg, 3000, np, 8, 11});
    }
    cases.push_back(BuildCase{alg, 300, 4, 8, 7});    // small n edge
    cases.push_back(BuildCase{alg, 3000, 4, 1, 13});  // k=1 (deep tree)
    cases.push_back(BuildCase{alg, 3000, 4, 16, 17}); // k=capacity
    cases.push_back(BuildCase{alg, 8000, 6, 8, 19});  // non-power-of-two procs
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BuilderP, ::testing::ValuesIn(sweep_cases()), case_name);

// --- distribution sweep: the builders must agree with the reference on any
// body distribution, not just Plummer ---

struct DistCase {
  Algorithm alg;
  const char* dist;
};

class BuilderDistP : public ::testing::TestWithParam<DistCase> {};

TEST_P(BuilderDistP, MatchesReferenceOnDistribution) {
  const DistCase c = GetParam();
  BHConfig cfg;
  cfg.n = 2500;
  AppState st;
  st.cfg = cfg;
  if (std::string(c.dist) == "uniform")
    st.init(make_uniform_cube(cfg.n, 3), 4);
  else
    st.init(make_colliding_pair(cfg.n, 3), 4);
  st.cfg = cfg;
  run_build(c.alg, st);
  const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st));
}

std::vector<DistCase> dist_cases() {
  std::vector<DistCase> cases;
  for (Algorithm alg : all_algorithms())
    for (const char* d : {"uniform", "colliding"}) cases.push_back(DistCase{alg, d});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Distributions, BuilderDistP, ::testing::ValuesIn(dist_cases()),
                         [](const auto& info) {
                           return std::string(algorithm_name(info.param.alg)) + "_" +
                                  info.param.dist;
                         });

TEST(SpaceBuilderEdge, SingleSubspaceWhenSmall) {
  // n below the SPACE threshold: the whole space is one subspace; the tree
  // must still be correct and equivalent.
  BHConfig cfg;
  cfg.n = 100;
  cfg.space_threshold = 1000;
  AppState st = make_app_state(cfg, 4);
  run_build(Algorithm::kSpace, st);
  ASSERT_TRUE(check_tree(st.tree.root, st.bodies, st.cfg).ok);
  EXPECT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st));
}

TEST(SpaceBuilderEdge, TinyThresholdManySubspaces) {
  BHConfig cfg;
  cfg.n = 2000;
  cfg.space_threshold = 16;  // deep partitioning tree, many subspaces
  AppState st = make_app_state(cfg, 4);
  run_build(Algorithm::kSpace, st);
  ASSERT_TRUE(check_tree(st.tree.root, st.bodies, st.cfg).ok);
  EXPECT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st));
}

TEST(BuilderDeterminism, SameInputsSameTreeAndClocks) {
  BHConfig cfg;
  cfg.n = 2000;
  auto once = [&](Algorithm alg) {
    AppState st = make_app_state(cfg, 8);
    SimContext ctx(PlatformSpec::origin2000(), 8);
    register_common_regions(ctx, st);
    std::uint64_t hash = 0;
    auto go = [&](auto& b) {
      b.register_regions(ctx);
      ctx.run([&](SimProc& rt) {
        b.build(rt);
        rt.barrier();
      });
      hash = canonical_hash(st.tree.root, st.bodies);
    };
    if (alg == Algorithm::kOrig) {
      OrigBuilder b(st);
      go(b);
    } else {
      SpaceBuilder b(st);
      go(b);
    }
    return std::make_pair(hash, ctx.elapsed_ns());
  };
  for (Algorithm alg : {Algorithm::kOrig, Algorithm::kSpace}) {
    const auto a = once(alg);
    const auto b = once(alg);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second) << "virtual time not deterministic";
  }
}

TEST(BuilderLocks, SpaceUsesNoLocksOrigUsesMany) {
  // PARTREE's low lock count depends on the partition being spatially
  // coherent (paper §2.4: "if the partitioning incorporates physical
  // locality, this overhead should be small"), so run one full time-step
  // first — its costzones pass replaces the round-robin initial assignment —
  // and measure the locks of a second, representative build.
  BHConfig cfg;
  cfg.n = 4000;
  auto locks_of = [&](Algorithm alg) {
    AppState st = make_app_state(cfg, 8);
    SimContext ctx(PlatformSpec::ideal(), 8);
    register_common_regions(ctx, st);
    std::uint64_t locks = 0;
    with_builder(alg, st, [&](auto& b) {
      b.register_regions(ctx);
      ctx.run([&](SimProc& rt) {
        timestep(rt, st, b, /*measured=*/false);
        rt.begin_phase(Phase::kTreeBuild);
        b.build(rt);
        rt.barrier();
        rt.begin_phase(Phase::kOther);
      });
      for (const auto& ps : ctx.stats())
        locks += ps.lock_acquires[static_cast<int>(Phase::kTreeBuild)];
    });
    return locks;
  };
  const auto orig = locks_of(Algorithm::kOrig);
  const auto partree = locks_of(Algorithm::kPartree);
  const auto space = locks_of(Algorithm::kSpace);
  const auto radix = locks_of(Algorithm::kRadix);
  EXPECT_GT(orig, 0u);
  EXPECT_LT(partree, orig / 2) << "PARTREE must lock far less than ORIG";
  EXPECT_EQ(space, 0u) << "SPACE must be entirely lock-free";
  EXPECT_EQ(radix, 0u) << "RADIX must be entirely lock-free";
}

TEST(RadixBuilderEdge, SingleSegmentWhenSmall) {
  // n below the segmentation threshold: no upper cells; the one claimed
  // segment builds the whole tree (root may even be a leaf).
  BHConfig cfg;
  cfg.n = 100;
  cfg.space_threshold = 1000;
  AppState st = make_app_state(cfg, 4);
  run_build(Algorithm::kRadix, st);
  ASSERT_TRUE(check_tree(st.tree.root, st.bodies, st.cfg).ok);
  EXPECT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st));
}

TEST(RadixBuilderEdge, TinyThresholdManySegments) {
  BHConfig cfg;
  cfg.n = 2000;
  cfg.space_threshold = 16;  // deep upper tree, many claimed segments
  AppState st = make_app_state(cfg, 4);
  run_build(Algorithm::kRadix, st);
  ASSERT_TRUE(check_tree(st.tree.root, st.bodies, st.cfg).ok);
  EXPECT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st));
}

TEST(RadixBuilderEdge, CoincidentBodiesFallBackGeometrically) {
  // More bodies than leaf_cap inside one 2^-21 Morton quantum: the key bits
  // run out and the builder must split the identical-key run geometrically,
  // matching the reference's coincident-body handling.
  BHConfig cfg;
  cfg.n = 64;
  cfg.leaf_cap = 2;
  AppState st = make_app_state(cfg, 4);
  // Collapse bodies into two clusters much tighter than the key quantum.
  for (std::size_t i = 0; i < st.bodies.size(); ++i) {
    const double eps = 1e-12 * static_cast<double>(i % 5);
    const double base = (i % 2 == 0) ? 0.25 : -0.25;
    st.bodies[i].pos = Vec3{base + eps, base - eps, base + 2.0 * eps};
  }
  run_build(Algorithm::kRadix, st);
  const TreeCheckResult res = check_tree(st.tree.root, st.bodies, st.cfg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(canonical_hash(st.tree.root, st.bodies), reference_hash(st));
}

}  // namespace
}  // namespace ptb
