// The batched interaction-list force kernel (src/bh/forcekernel.*) is an
// optimization, not a model change: with PTB_FORCE_SLOWPATH=1 the force
// phase falls back to the reference scalar walk — accelerations accumulated
// inside the tree traversal, one compute charge per interaction — and the
// two paths must agree bit-for-bit on every virtual time, every memory-event
// counter and every interaction count for every algorithm on every platform.
// That oracle is what licenses the gather/evaluate split (docs/PERF.md,
// "The interaction-list oracle").
//
// As in test_mem_equiv.cpp, virtual times are a function of the actual
// addresses of the registered regions, so both runs share one AppState with
// a snapshot/restore between them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bh/forcekernel.hpp"
#include "harness/experiment.hpp"
#include "mem/model.hpp"
#include "prof/profile.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/radix.hpp"
#include "treebuild/space.hpp"
#include "treebuild/update.hpp"

namespace ptb {
namespace {

/// Scoped PTB_FORCE_SLOWPATH toggle: the flag is sampled per force phase
/// (bh::force_slowpath_enabled is a live getenv), so flipping it between
/// runs in one process selects the path.
struct ScopedForceSlowpath {
  explicit ScopedForceSlowpath(bool on) {
    if (on)
      ::setenv("PTB_FORCE_SLOWPATH", "1", 1);
    else
      ::unsetenv("PTB_FORCE_SLOWPATH");
  }
  ~ScopedForceSlowpath() { ::unsetenv("PTB_FORCE_SLOWPATH"); }
};

struct PathRun {
  RunResult run;
  std::vector<std::uint64_t> clocks;
  std::vector<MemProcStats> mem;
  std::vector<std::uint64_t> cells;
  std::vector<std::uint64_t> bodies;
  std::vector<Vec3> acc;
};

struct StateSnapshot {
  Bodies bodies;
  std::vector<AlignedVec<std::int32_t>> partition;
  std::vector<std::int32_t> body_slot;
};

StateSnapshot take_snapshot(const AppState& st) {
  return StateSnapshot{st.bodies, st.partition, st.body_slot};
}

void restore_snapshot(AppState& st, const StateSnapshot& snap) {
  std::copy(snap.bodies.begin(), snap.bodies.end(), st.bodies.begin());
  for (std::size_t p = 0; p < st.partition.size(); ++p)
    st.partition[p].assign(snap.partition[p].begin(), snap.partition[p].end());
  std::copy(snap.body_slot.begin(), snap.body_slot.end(), st.body_slot.begin());
  st.tree.root = nullptr;
  for (auto& c : st.tree.created) c.clear();
  for (int i = 0; i < st.tree.nbodies; ++i)
    st.tree.body_leaf[static_cast<std::size_t>(i)].store(nullptr, std::memory_order_relaxed);
  std::fill(st.tree.reduce.begin(), st.tree.reduce.end(), ReduceSlot{});
  std::fill(st.interactions.begin(), st.interactions.end(), 0);
  std::fill(st.interactions_cell.begin(), st.interactions_cell.end(), 0);
  std::fill(st.interactions_body.begin(), st.interactions_body.end(), 0);
  st.storage.global.reset();
  for (auto& pool : st.storage.per_proc) pool.reset();
}

struct RunOpts {
  bool race = false;
  bool prof = false;
};

template <class Builder>
std::vector<PathRun> run_paths(const std::string& platform, int n, int nprocs,
                               const RunOpts& opts) {
  BHConfig bh;
  bh.n = n;
  AppState st = make_app_state(bh, nprocs);
  const StateSnapshot snap = take_snapshot(st);
  Builder builder(st);
  const RunConfig rc{/*warmup_steps=*/0, /*measured_steps=*/1};
  std::vector<PathRun> out;
  for (bool slow : {false, true}) {
    ScopedForceSlowpath env(slow);
    restore_snapshot(st, snap);
    SimContext ctx(PlatformSpec::by_name(platform), nprocs, default_sim_backend(),
                   /*race_detect=*/opts.race);
    prof::Recorder rec;
    if (opts.prof) ctx.set_profiler(&rec);
    PathRun r;
    r.run = run_simulation(ctx, st, builder, rc);
    for (int p = 0; p < nprocs; ++p) {
      r.clocks.push_back(ctx.clock_ns(p));
      r.mem.push_back(ctx.mem().proc_stats(p));
      r.cells.push_back(st.interactions_cell[static_cast<std::size_t>(p)]);
      r.bodies.push_back(st.interactions_body[static_cast<std::size_t>(p)]);
    }
    for (const Body& b : st.bodies) r.acc.push_back(b.acc);
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<PathRun> run_algorithm(Algorithm alg, const std::string& platform, int n,
                                   int nprocs, const RunOpts& opts = {}) {
  switch (alg) {
    case Algorithm::kOrig:
      return run_paths<OrigBuilder>(platform, n, nprocs, opts);
    case Algorithm::kLocal:
      return run_paths<LocalBuilder>(platform, n, nprocs, opts);
    case Algorithm::kUpdate:
      return run_paths<UpdateBuilder>(platform, n, nprocs, opts);
    case Algorithm::kPartree:
      return run_paths<PartreeBuilder>(platform, n, nprocs, opts);
    case Algorithm::kSpace:
      return run_paths<SpaceBuilder>(platform, n, nprocs, opts);
    case Algorithm::kRadix:
      return run_paths<RadixBuilder>(platform, n, nprocs, opts);
  }
  PTB_CHECK_MSG(false, "unhandled algorithm");
  return {};
}

void expect_identical(const PathRun& fast, const PathRun& slow) {
  EXPECT_EQ(fast.clocks, slow.clocks);
  EXPECT_EQ(fast.run.total_ns, slow.run.total_ns);
  // Interaction counts must be reproduced exactly by the gather walk.
  EXPECT_EQ(fast.cells, slow.cells);
  EXPECT_EQ(fast.bodies, slow.bodies);
  ASSERT_EQ(fast.mem.size(), slow.mem.size());
  for (std::size_t p = 0; p < fast.mem.size(); ++p) {
    SCOPED_TRACE("proc " + std::to_string(p));
    for (const MemCounterDesc& c : kMemCounters) {
      SCOPED_TRACE(c.metric);
      EXPECT_EQ(fast.mem[p].*(c.field), slow.mem[p].*(c.field));
    }
  }
  ASSERT_EQ(fast.run.proc_stats.size(), slow.run.proc_stats.size());
  for (std::size_t p = 0; p < fast.run.proc_stats.size(); ++p) {
    SCOPED_TRACE("proc " + std::to_string(p));
    EXPECT_EQ(fast.run.proc_stats[p].phase_ns, slow.run.proc_stats[p].phase_ns);
    EXPECT_EQ(fast.run.proc_stats[p].lock_acquires, slow.run.proc_stats[p].lock_acquires);
  }
  // Default builds: the sequential fold in evaluate reproduces the walk's
  // accumulation order, so the accelerations themselves match to the bit.
  // (-DPTB_NATIVE_OPT may contract differently; the equivalence tests run on
  // the default build, see docs/PERF.md.)
  ASSERT_EQ(fast.acc.size(), slow.acc.size());
  for (std::size_t i = 0; i < fast.acc.size(); ++i) {
    SCOPED_TRACE("body " + std::to_string(i));
    EXPECT_EQ(fast.acc[i].x, slow.acc[i].x);
    EXPECT_EQ(fast.acc[i].y, slow.acc[i].y);
    EXPECT_EQ(fast.acc[i].z, slow.acc[i].z);
  }
}

constexpr int kBodies = 2048;
constexpr int kProcs = 8;

struct EquivCase {
  Algorithm alg;
  const char* platform;
};

class ForcePathEquivP : public ::testing::TestWithParam<EquivCase> {};

TEST_P(ForcePathEquivP, KernelAndWalkBitIdentical) {
  const EquivCase c = GetParam();
  const auto runs = run_algorithm(c.alg, c.platform, kBodies, kProcs);
  expect_identical(runs[0], runs[1]);
}

std::vector<EquivCase> all_cases() {
  std::vector<EquivCase> cases;
  for (Algorithm alg : all_algorithms())
    for (const char* platform : {"ideal", "challenge", "origin2000", "paragon",
                                 "typhoon0_hlrc", "typhoon0_sc"})
      cases.push_back(EquivCase{alg, platform});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsAllPlatforms, ForcePathEquivP,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<EquivCase>& info) {
                           return std::string(algorithm_name(info.param.alg)) + "_" +
                                  info.param.platform;
                         });

// Observers must not perturb the equivalence. Under --race the charge
// dispatch routes through the decorator; under --prof spans decay to
// per-element charges — the gather walk must keep matching the scalar
// oracle through both.
TEST(ForcePathEquiv, IdenticalUnderRaceDetector) {
  RunOpts opts;
  opts.race = true;
  const auto runs = run_algorithm(Algorithm::kSpace, "challenge", kBodies, kProcs, opts);
  expect_identical(runs[0], runs[1]);
}

TEST(ForcePathEquiv, IdenticalUnderProfiler) {
  RunOpts opts;
  opts.prof = true;
  const auto runs = run_algorithm(Algorithm::kPartree, "typhoon0_hlrc", kBodies, kProcs,
                                  opts);
  expect_identical(runs[0], runs[1]);
}

// ---------------------------------------------------------------------------
// Unit-level kernel contract: evaluate must reproduce the scalar two-term
// accumulation exactly, including when the list length is not a multiple of
// the 8-wide block.

Vec3 scalar_reference(const bh::InteractionList& il, const Vec3& pos, double eps2) {
  Vec3 acc{};
  for (std::size_t i = 0; i < il.size(); ++i) {
    const double dx = il.x()[i] - pos.x;
    const double dy = il.y()[i] - pos.y;
    const double dz = il.z()[i] - pos.z;
    const double r2 = dx * dx + dy * dy + dz * dz + eps2;
    const double inv = 1.0 / (r2 * std::sqrt(r2));
    const double s = il.m()[i] * inv;
    acc.x += dx * s;
    acc.y += dy * s;
    acc.z += dz * s;
  }
  return acc;
}

TEST(ForceKernel, EvaluateMatchesScalarForRaggedLengths) {
  bh::InteractionList il;
  const Vec3 pos{0.1, -0.2, 0.3};
  const double eps2 = 0.05 * 0.05;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<double>(rng % 1000) / 500.0 - 1.0;
  };
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    il.clear();
    for (std::size_t i = 0; i < len; ++i)
      il.push_body(Vec3{next(), next(), next()}, 1.0 + 0.5 * next());
    SCOPED_TRACE("len " + std::to_string(len));
    const Vec3 fast = bh::evaluate(il, pos, eps2);
    const Vec3 ref = scalar_reference(il, pos, eps2);
    EXPECT_EQ(fast.x, ref.x);
    EXPECT_EQ(fast.y, ref.y);
    EXPECT_EQ(fast.z, ref.z);
  }
}

TEST(ForceKernel, ClearRetainsCapacityAndSplitsKinds) {
  bh::InteractionList il;
  for (int i = 0; i < 100; ++i) il.push_cell(Vec3{1, 2, 3}, 4.0);
  for (int i = 0; i < 50; ++i) il.push_body(Vec3{5, 6, 7}, 8.0);
  EXPECT_EQ(il.size(), 150u);
  EXPECT_EQ(il.cells(), 100u);
  EXPECT_EQ(il.bodies(), 50u);
  il.clear();
  EXPECT_EQ(il.size(), 0u);
  EXPECT_EQ(il.cells(), 0u);
  EXPECT_EQ(il.bodies(), 0u);
}

}  // namespace
}  // namespace ptb
