// Tests for ptb::anatomy — the exact speedup-loss ledger: the tiling
// invariant sum(categories) == p * T_p across the full algorithm × platform
// matrix, the SPACE zero-lock-loss guarantee, bit-identity of ledgered runs
// (alone and stacked with race + prof + sight), a hand-computed two-processor
// waterfall on the ideal platform, the anatomy JSON, and the metrics bridge.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "anatomy/anatomy.hpp"
#include "anatomy/sweep.hpp"
#include "harness/experiment.hpp"
#include "json_checker.hpp"
#include "platform/spec.hpp"
#include "sim/sim_rt.hpp"

namespace ptb {
namespace {

using anatomy::Category;
using anatomy::Collector;
using anatomy::Ledger;
using anatomy::Waterfall;
using testutil::JsonChecker;

ExperimentSpec anatomy_spec(const char* platform, Algorithm alg, int n, int nprocs) {
  ExperimentSpec spec;
  spec.platform = platform;
  spec.algorithm = alg;
  spec.n = n;
  spec.nprocs = nprocs;
  spec.warmup_steps = 1;
  spec.measured_steps = 1;
  spec.anatomy = true;
  return spec;
}

double cell_sum(const Ledger& led, int p, Phase ph) {
  double t = 0.0;
  for (int c = 0; c < anatomy::kNumCategories; ++c)
    t += led.cell_ns(p, ph, static_cast<Category>(c));
  return t;
}

// --- the exact-ledger invariant over the full matrix ---

// The tentpole guarantee: on every (algorithm, platform) cell, every virtual
// cycle of every processor lands in exactly one category — the ledger tiles
// p * T_p bit-exactly, per phase and in total.
TEST(AnatomyLedger, ExactAcrossTheAlgorithmPlatformMatrix) {
  for (const char* platform : {"ideal", "challenge", "origin2000", "paragon",
                               "typhoon0_hlrc", "typhoon0_sc", "numa2020",
                               "simt2020"}) {
    for (Algorithm alg : all_algorithms()) {
      ExperimentRunner runner;
      const ExperimentResult r = runner.run(anatomy_spec(platform, alg, 600, 4));
      const std::string cfg = std::string(platform) + "/" + algorithm_name(alg);
      ASSERT_TRUE(r.anatomy.enabled) << cfg;
      ASSERT_EQ(r.anatomy.nprocs, 4) << cfg;
      // Exact double equality, not near: all terms are integer-valued ns.
      EXPECT_EQ(r.anatomy.total_ns, r.run.total_ns) << cfg;
      EXPECT_EQ(r.anatomy.sum_ns(), 4.0 * r.anatomy.total_ns) << cfg;
      for (int ph = 0; ph < kNumPhases; ++ph) {
        if (ph == static_cast<int>(Phase::kOther)) continue;
        const auto phase = static_cast<Phase>(ph);
        double phase_total = 0.0;
        for (int p = 0; p < 4; ++p) {
          phase_total += cell_sum(r.anatomy, p, phase);
          EXPECT_GE(r.anatomy.cell_ns(p, phase, Category::kBusy), 0.0)
              << cfg << " proc " << p << " " << phase_name(phase);
        }
        EXPECT_EQ(phase_total, 4.0 * r.anatomy.phase_ns[static_cast<std::size_t>(ph)])
            << cfg << " " << phase_name(phase);
      }
    }
  }
}

// --- the SPACE claim ---

// SPACE builds each processor's subtree in its own spatial region without
// tree locks, so its ledger carries zero lock-wait cycles — whole run, every
// phase. ORIG (insertion through the shared upper tree) is the contrast.
TEST(AnatomyLedger, SpaceLedgersZeroLockLossCycles) {
  ExperimentRunner runner;
  const ExperimentResult space =
      runner.run(anatomy_spec("challenge", Algorithm::kSpace, 2048, 4));
  ASSERT_TRUE(space.anatomy.enabled);
  EXPECT_EQ(space.anatomy.category_ns(Category::kLockWait), 0.0);

  const ExperimentResult orig =
      runner.run(anatomy_spec("challenge", Algorithm::kOrig, 2048, 4));
  EXPECT_GT(orig.anatomy.category_ns(Category::kLockWait), 0.0);
}

// RADIX makes the same guarantee by construction — no detail::maybe_lock
// sites at all, only fetch_add — on the 1998 machines AND the 2020s ones.
TEST(AnatomyLedger, RadixLedgersZeroLockLossCycles) {
  ExperimentRunner runner;
  for (const char* platform : {"challenge", "numa2020", "simt2020"}) {
    const ExperimentResult r =
        runner.run(anatomy_spec(platform, Algorithm::kRadix, 2048, 4));
    ASSERT_TRUE(r.anatomy.enabled) << platform;
    EXPECT_EQ(r.anatomy.category_ns(Category::kLockWait), 0.0) << platform;
  }
}

// --- bit-identity ---

// The ledger is a pure observer: the collector only snapshots counters the
// simulator already keeps, so enabling it must not move a single virtual ns.
TEST(AnatomyEndToEnd, BitIdenticalWithTheLedgerAttached) {
  for (const char* platform : {"challenge", "typhoon0_hlrc"}) {
    for (Algorithm alg : all_algorithms()) {
      ExperimentSpec spec = anatomy_spec(platform, alg, 600, 4);
      ExperimentRunner runner;  // shares the cached sequential baseline
      spec.anatomy = false;
      const ExperimentResult plain = runner.run(spec);
      spec.anatomy = true;
      const ExperimentResult ledgered = runner.run(spec);
      const std::string cfg = std::string(platform) + "/" + algorithm_name(alg);
      EXPECT_EQ(ledgered.run.total_ns, plain.run.total_ns) << cfg;
      EXPECT_EQ(ledgered.treebuild_locks_total, plain.treebuild_locks_total) << cfg;
      EXPECT_EQ(ledgered.mem.page_faults, plain.mem.page_faults) << cfg;
      EXPECT_EQ(ledgered.mem.remote_misses, plain.mem.remote_misses) << cfg;
      EXPECT_FALSE(plain.anatomy.enabled);
      EXPECT_TRUE(ledgered.anatomy.enabled) << cfg;
    }
  }
}

// All four observers stacked still perturb nothing, and the ledger stays
// exact with the decorators (race, sight) wrapping the protocol model.
TEST(AnatomyEndToEnd, CombinedWithRaceProfSightIsBitIdentical) {
  ExperimentSpec spec = anatomy_spec("typhoon0_hlrc", Algorithm::kOrig, 1500, 4);
  spec.anatomy = false;
  ExperimentRunner plain_runner;
  const ExperimentResult plain = plain_runner.run(spec);
  spec.anatomy = true;
  spec.race = true;
  spec.prof = true;
  spec.sight = true;
  ExperimentRunner full_runner;
  const ExperimentResult full = full_runner.run(spec);
  EXPECT_EQ(full.run.total_ns, plain.run.total_ns);
  EXPECT_EQ(full.treebuild_locks_total, plain.treebuild_locks_total);
  EXPECT_EQ(full.mem.page_faults, plain.mem.page_faults);
  ASSERT_TRUE(full.anatomy.enabled);
  EXPECT_EQ(full.anatomy.sum_ns(), 4.0 * full.anatomy.total_ns);
  ASSERT_TRUE(full.race.enabled);
  ASSERT_TRUE(full.profile.enabled);
  ASSERT_TRUE(full.sight.enabled);
}

// --- hand-computed two-processor fixture ---

// On the ideal platform (1 ns per work unit, zero memory/lock/barrier
// charges) the whole ledger is computable by hand. Processor p computes
// 100*(p+1) units, then both hit a barrier:
//   proc 0: 100 ns busy + 100 ns waiting for proc 1 -> 200 ns
//   proc 1: 200 ns busy                              -> 200 ns
// so T_2 = 200, busy = 300, barrier_wait = 100, and the ledger tiles
// 2 * 200 = 400 exactly. Against a one-processor reference (T_1 = 100) the
// waterfall attributes the 2*200 - 100 = 300 ns loss as 200 ns extra
// parallel work + 100 ns imbalance.
TEST(AnatomyTwoProc, HandComputedLedgerAndWaterfall) {
  const auto body = [](SimProc& rt) {
    rt.begin_phase(Phase::kTreeBuild);
    rt.compute(100.0 * (rt.self() + 1));
    rt.barrier();
  };

  SimContext ctx(PlatformSpec::ideal(), 2);
  Collector col;
  ctx.set_anatomy(&col);
  ctx.run(body);
  const Ledger led = anatomy::build_ledger(ctx.stats(), col, PlatformSpec::ideal());

  EXPECT_EQ(led.total_ns, 200.0);
  EXPECT_EQ(led.cell_ns(0, Phase::kTreeBuild, Category::kBusy), 100.0);
  EXPECT_EQ(led.cell_ns(1, Phase::kTreeBuild, Category::kBusy), 200.0);
  EXPECT_EQ(led.cell_ns(0, Phase::kTreeBuild, Category::kBarrierWait), 100.0);
  EXPECT_EQ(led.cell_ns(1, Phase::kTreeBuild, Category::kBarrierWait), 0.0);
  EXPECT_EQ(led.category_ns(Category::kBusy), 300.0);
  EXPECT_EQ(led.category_ns(Category::kMemLocal), 0.0);
  EXPECT_EQ(led.category_ns(Category::kMemRemote), 0.0);
  EXPECT_EQ(led.category_ns(Category::kLockWait), 0.0);
  EXPECT_EQ(led.category_ns(Category::kPhaseSkew), 0.0);
  EXPECT_EQ(led.imbalance_ns(), 100.0);
  EXPECT_EQ(led.sum_ns(), 400.0);

  SimContext ref_ctx(PlatformSpec::ideal(), 1);
  Collector ref_col;
  ref_ctx.set_anatomy(&ref_col);
  ref_ctx.run(body);
  const Ledger ref = anatomy::build_ledger(ref_ctx.stats(), ref_col,
                                           PlatformSpec::ideal());
  EXPECT_EQ(ref.total_ns, 100.0);

  const Waterfall w = anatomy::build_waterfall(ref, led);
  EXPECT_EQ(w.loss_ns, 300.0);
  EXPECT_EQ(w.delta[static_cast<std::size_t>(Category::kBusy)], 200.0);
  EXPECT_EQ(w.delta[static_cast<std::size_t>(Category::kBarrierWait)], 100.0);
  EXPECT_EQ(w.delta[static_cast<std::size_t>(Category::kMemLocal)], 0.0);
  EXPECT_EQ(w.delta[static_cast<std::size_t>(Category::kLockWait)], 0.0);
}

// --- sweep, JSON, metrics bridge, env plumbing ---

TEST(AnatomySweep, JsonIsWellFormedAndWaterfallCoversTheLoss) {
  ExperimentRunner runner;
  ExperimentSpec spec = anatomy_spec("challenge", Algorithm::kLocal, 600, 2);
  const anatomy::SweepResult sr = anatomy::run_anatomy_sweep(runner, spec, {2});
  ASSERT_EQ(sr.points.size(), 2u);  // the p=1 reference is prepended
  ASSERT_NE(sr.reference(), nullptr);
  EXPECT_EQ(sr.reference()->procs, 1);
  EXPECT_EQ(sr.prov.algorithm, "LOCAL");
  EXPECT_EQ(sr.prov.nbodies, 600);

  const Waterfall& w = sr.points.back().waterfall;
  ASSERT_TRUE(w.enabled);
  double delta_sum = 0.0;
  for (double d : w.delta) delta_sum += d;
  EXPECT_EQ(delta_sum, w.loss_ns);
  EXPECT_EQ(w.loss_ns, 2.0 * w.tp_ns - w.t1_ns);

  const std::string json = anatomy::anatomy_json(sr);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"anatomy\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"invariant_exact\": true"), std::string::npos);
  EXPECT_NE(json.find("\"waterfall\""), std::string::npos);
}

TEST(AnatomyMetrics, LedgerLandsInTheRegistry) {
  ExperimentRunner runner;
  const ExperimentResult r =
      runner.run(anatomy_spec("challenge", Algorithm::kOrig, 600, 2));
  EXPECT_EQ(r.metrics.value("anatomy.total_ns", {}), r.run.total_ns);
  EXPECT_EQ(r.metrics.value("anatomy.procs", {}), 2.0);
  double total = 0.0;
  for (int c = 0; c < anatomy::kNumCategories; ++c)
    total += r.metrics.value(
        "anatomy.category_ns",
        {{"category", anatomy::category_name(static_cast<Category>(c))}});
  EXPECT_EQ(total, 2.0 * r.run.total_ns);
}

TEST(AnatomyPath, FlagBeatsEnvAndEnvEnables) {
  ::setenv("PTB_ANATOMY", "/tmp/env_anatomy.json", 1);
  EXPECT_EQ(anatomy::anatomy_path_from("/tmp/flag.json"), "/tmp/flag.json");
  EXPECT_EQ(anatomy::anatomy_path_from(""), "/tmp/env_anatomy.json");
  EXPECT_TRUE(anatomy::default_anatomy_enabled());
  ::setenv("PTB_ANATOMY", "0", 1);
  EXPECT_FALSE(anatomy::default_anatomy_enabled());
  ::unsetenv("PTB_ANATOMY");
  EXPECT_EQ(anatomy::anatomy_path_from(""), "");
  EXPECT_FALSE(anatomy::default_anatomy_enabled());
}

}  // namespace
}  // namespace ptb
