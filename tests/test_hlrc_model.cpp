// Home-based Lazy Release Consistency model: twins/diffs/write notices,
// lazy invalidation semantics, fault costs, RMW behaving like a sync op.
#include <gtest/gtest.h>

#include <memory>

#include "mem/hlrc_model.hpp"

namespace ptb {
namespace {

class HlrcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = PlatformSpec::paragon();
    spec_.cache_bytes = 0;  // isolate protocol costs from the local cache
    model_ = std::make_unique<HlrcModel>(spec_, 4);
    model_->register_region(buf_, sizeof(buf_), HomePolicy::kFixed, 0, "buf");
  }

  PlatformSpec spec_;
  std::unique_ptr<HlrcModel> model_;
  alignas(4096) char buf_[4096 * 4];
};

TEST_F(HlrcTest, ColdAccessFaultsOnce) {
  const auto c1 = model_->on_read(1, buf_, 8, 0);
  EXPECT_EQ(c1, static_cast<std::uint64_t>(spec_.page_fault_ns));
  EXPECT_EQ(model_->on_read(1, buf_, 8, 0), 0u);
  EXPECT_EQ(model_->proc_stats(1).page_faults, 1u);
}

TEST_F(HlrcTest, FirstWriteInIntervalCreatesTwin) {
  model_->on_read(1, buf_, 8, 0);  // page now valid
  const auto c = model_->on_write(1, buf_, 8, 0);
  EXPECT_EQ(c, static_cast<std::uint64_t>(spec_.twin_ns));
  // Second write to the same page in the same interval: free.
  EXPECT_EQ(model_->on_write(1, buf_ + 100, 8, 0), 0u);
  EXPECT_EQ(model_->proc_stats(1).twins, 1u);
}

TEST_F(HlrcTest, ReleaseDiffsWrittenPages) {
  model_->on_write(1, buf_, 8, 0);
  model_->on_write(1, buf_ + 4096, 8, 0);  // second page
  const auto c = model_->on_release(1, nullptr, 0);
  EXPECT_EQ(c, static_cast<std::uint64_t>(2 * spec_.diff_per_page_ns));
  EXPECT_EQ(model_->proc_stats(1).diffs, 2u);
  EXPECT_EQ(model_->notice_log_size(), 2u);
}

TEST_F(HlrcTest, LazinessStaleCopyReadableUntilAcquire) {
  // Proc 2 caches the page; proc 1 writes and releases; proc 2 can STILL
  // read its stale copy for free until proc 2 itself synchronizes.
  model_->on_read(2, buf_, 8, 0);
  model_->on_write(1, buf_, 8, 0);
  model_->on_release(1, nullptr, 0);
  EXPECT_EQ(model_->on_read(2, buf_, 8, 0), 0u);  // lazy: no invalidation yet
  model_->on_acquire(2, nullptr, 0);                        // applies write notices
  EXPECT_EQ(model_->on_read(2, buf_, 8, 0),
            static_cast<std::uint64_t>(spec_.page_fault_ns));
}

TEST_F(HlrcTest, AcquireCostIncludesNotices) {
  model_->on_write(1, buf_, 8, 0);
  model_->on_write(1, buf_ + 4096, 8, 0);
  model_->on_release(1, nullptr, 0);
  const auto c = model_->on_acquire(2, nullptr, 0);
  EXPECT_EQ(c, static_cast<std::uint64_t>(spec_.svm_lock_ns + 2 * spec_.notice_ns));
  EXPECT_EQ(model_->proc_stats(2).notices_received, 2u);
}

TEST_F(HlrcTest, OwnNoticesAreSkipped) {
  model_->on_write(1, buf_, 8, 0);
  model_->on_release(1, nullptr, 0);
  const auto c = model_->on_acquire(1, nullptr, 0);  // own write notice: no invalidation
  EXPECT_EQ(c, static_cast<std::uint64_t>(spec_.svm_lock_ns));
  EXPECT_EQ(model_->on_read(1, buf_, 8, 0), 0u);  // own copy stays valid
}

TEST_F(HlrcTest, BarrierFlushesAndInvalidates) {
  model_->on_write(1, buf_, 8, 0);
  model_->on_read(2, buf_, 8, 0);
  // Barrier: arrivals flush, departures apply notices.
  const auto a1 = model_->on_barrier_arrive(1, 0);
  EXPECT_EQ(a1, static_cast<std::uint64_t>(spec_.diff_per_page_ns));
  EXPECT_EQ(model_->on_barrier_arrive(2, 0), 0u);
  const auto d2 = model_->on_barrier_depart(2, 0);
  EXPECT_GE(d2, static_cast<std::uint64_t>(spec_.svm_barrier_ns));
  EXPECT_EQ(model_->on_read(2, buf_, 8, 0),
            static_cast<std::uint64_t>(spec_.page_fault_ns));
}

TEST_F(HlrcTest, FalseSharingIsToleratedWithinInterval) {
  // Multiple writers to the same page in concurrent intervals: both twin it,
  // both diff it, nobody faults until they synchronize (multiple-writer).
  model_->on_write(1, buf_, 8, 0);
  model_->on_write(2, buf_ + 64, 8, 0);
  EXPECT_EQ(model_->proc_stats(1).twins, 1u);
  EXPECT_EQ(model_->proc_stats(2).twins, 1u);
  model_->on_release(1, nullptr, 0);
  model_->on_release(2, nullptr, 0);
  EXPECT_EQ(model_->notice_log_size(), 2u);
}

TEST_F(HlrcTest, RmwIsAMiniSynchronization) {
  const auto c = model_->on_rmw(1, buf_, 0);
  // At least lock + fault + twin + diff: this is why ORIG's shared counter
  // is poisonous on SVM.
  EXPECT_GE(c, static_cast<std::uint64_t>(spec_.svm_lock_ns + spec_.page_fault_ns +
                                          spec_.twin_ns + spec_.diff_per_page_ns));
  // Another processor acquiring sees the counter page invalid.
  model_->on_acquire(2, nullptr, 0);
  EXPECT_EQ(model_->on_read(2, buf_, 8, 0),
            static_cast<std::uint64_t>(spec_.page_fault_ns));
}

TEST_F(HlrcTest, PageStateHook) {
  auto s = model_->page_state(buf_, 1);
  EXPECT_TRUE(s.shared_region);
  EXPECT_FALSE(s.valid_for_proc);
  model_->on_read(1, buf_, 8, 0);
  s = model_->page_state(buf_, 1);
  EXPECT_TRUE(s.valid_for_proc);
  EXPECT_EQ(s.home, 0);
}

TEST_F(HlrcTest, PrivateMemoryFree) {
  int x = 0;
  EXPECT_EQ(model_->on_read(0, &x, 4, 0), 0u);
  EXPECT_EQ(model_->on_write(0, &x, 4, 0), 0u);
}

TEST_F(HlrcTest, CrossPageWriteTouchesBothPages) {
  const auto c = model_->on_write(1, buf_ + 4090, 12, 0);  // straddles pages
  EXPECT_EQ(c, static_cast<std::uint64_t>(2 * (spec_.page_fault_ns + spec_.twin_ns)));
  EXPECT_EQ(model_->proc_stats(1).twins, 2u);
}

}  // namespace
}  // namespace ptb
