// The memory system's fast path (sealed dispatch, per-processor line
// lookasides, span-coalesced charging) is an optimization, not a model
// change: with PTB_MEM_SLOWPATH=1 the simulator falls back to the reference
// per-access path — virtual dispatch through the MemModel base, no
// lookasides, spans decayed to per-element calls — and the two must agree
// bit-for-bit on every virtual time and every memory-event counter for every
// algorithm on every platform. That oracle is what licenses the fast path.
//
// As in test_sim_backend_equiv.cpp, virtual times are a function of the
// actual addresses of the registered regions, so both runs share one
// AppState with a snapshot/restore between them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "mem/model.hpp"
#include "prof/profile.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/partree.hpp"
#include "treebuild/radix.hpp"
#include "treebuild/space.hpp"
#include "treebuild/update.hpp"

namespace ptb {
namespace {

/// Scoped PTB_MEM_SLOWPATH toggle: models sample the flag at construction,
/// so flipping it between SimContext constructions selects the path.
struct ScopedSlowpath {
  explicit ScopedSlowpath(bool on) {
    if (on)
      ::setenv("PTB_MEM_SLOWPATH", "1", 1);
    else
      ::unsetenv("PTB_MEM_SLOWPATH");
  }
  ~ScopedSlowpath() { ::unsetenv("PTB_MEM_SLOWPATH"); }
};

struct PathRun {
  RunResult run;
  std::vector<std::uint64_t> clocks;
  std::vector<MemProcStats> mem;
};

struct StateSnapshot {
  Bodies bodies;
  std::vector<AlignedVec<std::int32_t>> partition;
  std::vector<std::int32_t> body_slot;
};

StateSnapshot take_snapshot(const AppState& st) {
  return StateSnapshot{st.bodies, st.partition, st.body_slot};
}

void restore_snapshot(AppState& st, const StateSnapshot& snap) {
  std::copy(snap.bodies.begin(), snap.bodies.end(), st.bodies.begin());
  for (std::size_t p = 0; p < st.partition.size(); ++p)
    st.partition[p].assign(snap.partition[p].begin(), snap.partition[p].end());
  std::copy(snap.body_slot.begin(), snap.body_slot.end(), st.body_slot.begin());
  st.tree.root = nullptr;
  for (auto& c : st.tree.created) c.clear();
  for (int i = 0; i < st.tree.nbodies; ++i)
    st.tree.body_leaf[static_cast<std::size_t>(i)].store(nullptr, std::memory_order_relaxed);
  std::fill(st.tree.reduce.begin(), st.tree.reduce.end(), ReduceSlot{});
  std::fill(st.interactions.begin(), st.interactions.end(), 0);
  std::fill(st.interactions_cell.begin(), st.interactions_cell.end(), 0);
  std::fill(st.interactions_body.begin(), st.interactions_body.end(), 0);
  st.storage.global.reset();
  for (auto& pool : st.storage.per_proc) pool.reset();
}

struct RunOpts {
  bool race = false;
  bool prof = false;
};

template <class Builder>
std::vector<PathRun> run_paths(const std::string& platform, int n, int nprocs,
                               const RunOpts& opts) {
  BHConfig bh;
  bh.n = n;
  AppState st = make_app_state(bh, nprocs);
  const StateSnapshot snap = take_snapshot(st);
  Builder builder(st);
  const RunConfig rc{/*warmup_steps=*/0, /*measured_steps=*/1};
  std::vector<PathRun> out;
  for (bool slow : {false, true}) {
    ScopedSlowpath env(slow);
    restore_snapshot(st, snap);
    SimContext ctx(PlatformSpec::by_name(platform), nprocs, default_sim_backend(),
                   /*race_detect=*/opts.race);
    prof::Recorder rec;
    if (opts.prof) ctx.set_profiler(&rec);
    PathRun r;
    r.run = run_simulation(ctx, st, builder, rc);
    for (int p = 0; p < nprocs; ++p) {
      r.clocks.push_back(ctx.clock_ns(p));
      r.mem.push_back(ctx.mem().proc_stats(p));
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<PathRun> run_algorithm(Algorithm alg, const std::string& platform, int n,
                                   int nprocs, const RunOpts& opts = {}) {
  switch (alg) {
    case Algorithm::kOrig:
      return run_paths<OrigBuilder>(platform, n, nprocs, opts);
    case Algorithm::kLocal:
      return run_paths<LocalBuilder>(platform, n, nprocs, opts);
    case Algorithm::kUpdate:
      return run_paths<UpdateBuilder>(platform, n, nprocs, opts);
    case Algorithm::kPartree:
      return run_paths<PartreeBuilder>(platform, n, nprocs, opts);
    case Algorithm::kSpace:
      return run_paths<SpaceBuilder>(platform, n, nprocs, opts);
    case Algorithm::kRadix:
      return run_paths<RadixBuilder>(platform, n, nprocs, opts);
  }
  PTB_CHECK_MSG(false, "unhandled algorithm");
  return {};
}

void expect_identical(const PathRun& fast, const PathRun& slow) {
  EXPECT_EQ(fast.clocks, slow.clocks);
  EXPECT_EQ(fast.run.total_ns, slow.run.total_ns);
  ASSERT_EQ(fast.mem.size(), slow.mem.size());
  for (std::size_t p = 0; p < fast.mem.size(); ++p) {
    SCOPED_TRACE("proc " + std::to_string(p));
    for (const MemCounterDesc& c : kMemCounters) {
      SCOPED_TRACE(c.metric);
      EXPECT_EQ(fast.mem[p].*(c.field), slow.mem[p].*(c.field));
    }
  }
  ASSERT_EQ(fast.run.proc_stats.size(), slow.run.proc_stats.size());
  for (std::size_t p = 0; p < fast.run.proc_stats.size(); ++p) {
    SCOPED_TRACE("proc " + std::to_string(p));
    EXPECT_EQ(fast.run.proc_stats[p].phase_ns, slow.run.proc_stats[p].phase_ns);
    EXPECT_EQ(fast.run.proc_stats[p].lock_acquires, slow.run.proc_stats[p].lock_acquires);
  }
}

constexpr int kBodies = 2048;
constexpr int kProcs = 8;

struct EquivCase {
  Algorithm alg;
  const char* platform;
};

class MemPathEquivP : public ::testing::TestWithParam<EquivCase> {};

TEST_P(MemPathEquivP, FastAndSlowPathsBitIdentical) {
  const EquivCase c = GetParam();
  const auto runs = run_algorithm(c.alg, c.platform, kBodies, kProcs);
  expect_identical(runs[0], runs[1]);
}

std::vector<EquivCase> all_cases() {
  std::vector<EquivCase> cases;
  for (Algorithm alg : all_algorithms())
    for (const char* platform :
         {"challenge", "origin2000", "paragon", "typhoon0_hlrc", "typhoon0_sc",
          "numa2020", "simt2020"})
      cases.push_back(EquivCase{alg, platform});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsAllPlatforms, MemPathEquivP,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<EquivCase>& info) {
                           return std::string(algorithm_name(info.param.alg)) + "_" +
                                  info.param.platform;
                         });

// The observers must not perturb the equivalence: the race decorator routes
// the dispatch through the virtual base path (kind() == kOther), and the
// profiler decays spans to per-element charges to keep per-access
// attribution — both still have to match the slow-path oracle exactly.
TEST(MemPathEquiv, IdenticalUnderRaceDetector) {
  RunOpts opts;
  opts.race = true;
  const auto runs = run_algorithm(Algorithm::kSpace, "challenge", kBodies, kProcs, opts);
  expect_identical(runs[0], runs[1]);
}

TEST(MemPathEquiv, IdenticalUnderProfiler) {
  RunOpts opts;
  opts.prof = true;
  const auto runs = run_algorithm(Algorithm::kPartree, "typhoon0_hlrc", kBodies, kProcs, opts);
  expect_identical(runs[0], runs[1]);
}

// ---------------------------------------------------------------------------
// Unit-level span contract: on_read_shared_span must replicate the
// per-element on_read_shared loop — counters, cost, and cache state — on
// every model, including the fallback cases (unregistered memory, runs
// reaching past the end of a region).

struct SpanHarness {
  PlatformSpec spec;
  std::unique_ptr<MemModel> span_m;
  std::unique_ptr<MemModel> scalar_m;
  std::vector<double> arena;  // registered region
  std::vector<double> priv;   // unregistered memory

  explicit SpanHarness(const PlatformSpec& s, int nprocs = 4)
      : spec(s), arena(4096), priv(64) {
    span_m = make_mem_model(spec, nprocs);
    scalar_m = make_mem_model(spec, nprocs);
    for (MemModel* m : {span_m.get(), scalar_m.get()}) {
      m->register_region(arena.data(), arena.size() * sizeof(double),
                         HomePolicy::kInterleavedBlock, 0, "arena");
    }
  }

  /// Charges the same access pattern through both models: span-coalesced on
  /// one, the per-element reference loop on the other.
  void check(const void* p, std::size_t n, std::size_t stride, std::size_t count) {
    const std::uint64_t span_cost = span_m->on_read_shared_span(0, p, n, stride, count);
    std::uint64_t scalar_cost = 0;
    const char* a = static_cast<const char*>(p);
    for (std::size_t i = 0; i < count; ++i)
      scalar_cost += scalar_m->on_read_shared(0, a + i * stride, n);
    EXPECT_EQ(span_cost, scalar_cost);
    for (const MemCounterDesc& c : kMemCounters) {
      SCOPED_TRACE(c.metric);
      EXPECT_EQ(span_m->proc_stats(0).*(c.field), scalar_m->proc_stats(0).*(c.field));
    }
  }
};

class SpanVsScalar : public ::testing::TestWithParam<const char*> {};

TEST_P(SpanVsScalar, InRegionRun) {
  SpanHarness h(PlatformSpec::by_name(GetParam()));
  h.check(h.arena.data() + 7, 48, sizeof(double) * 6, 50);
  // Re-walk the same run: exercises the now-warm cache/lookaside state.
  h.check(h.arena.data() + 7, 48, sizeof(double) * 6, 50);
}

TEST_P(SpanVsScalar, RunCrossingRegionEnd) {
  SpanHarness h(PlatformSpec::by_name(GetParam()));
  // Starts inside the region but the last elements fall off its end: the
  // span path must take the per-element fallback, whose later elements
  // resolve as unregistered, exactly like the scalar loop.
  const std::size_t tail = h.arena.size() - 8;
  h.check(h.arena.data() + tail, sizeof(double), sizeof(double) * 4, 8);
}

TEST_P(SpanVsScalar, UnregisteredRun) {
  SpanHarness h(PlatformSpec::by_name(GetParam()));
  h.check(h.priv.data(), sizeof(double), sizeof(double), 16);
}

TEST_P(SpanVsScalar, SingleElementAndEmpty) {
  SpanHarness h(PlatformSpec::by_name(GetParam()));
  h.check(h.arena.data(), 48, sizeof(double), 1);
  h.check(h.arena.data(), 48, sizeof(double), 0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, SpanVsScalar,
                         ::testing::Values("ideal", "challenge", "origin2000",
                                           "typhoon0_hlrc"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Lookaside invalidation: registering a region must flush every processor's
// lookaside, including cached negative (not-shared) entries.

TEST(LineLookaside, RegisterRegionFlushesNegativeEntries) {
  auto m = make_mem_model(PlatformSpec::challenge(), 2);
  std::vector<double> a(512), b(512);
  m->register_region(a.data(), a.size() * sizeof(double), HomePolicy::kInterleavedBlock,
                     0, "a");
  // Cache a negative entry for b's line: unregistered reads charge nothing.
  EXPECT_EQ(m->on_read_shared(0, b.data(), 8), 0u);
  EXPECT_EQ(m->proc_stats(0).reads, 0u);
  // Now b becomes shared. A stale negative entry would keep reads at 0.
  m->register_region(b.data(), b.size() * sizeof(double), HomePolicy::kInterleavedBlock,
                     0, "b");
  m->on_read_shared(0, b.data(), 8);
  EXPECT_EQ(m->proc_stats(0).reads, 1u);
}

TEST(LineLookaside, ResetFlushes) {
  auto m = make_mem_model(PlatformSpec::challenge(), 2);
  std::vector<double> a(512);
  m->register_region(a.data(), a.size() * sizeof(double), HomePolicy::kInterleavedBlock,
                     0, "a");
  m->on_read_shared(0, a.data(), 8);
  EXPECT_EQ(m->proc_stats(0).reads, 1u);
  m->reset();
  // A stale positive entry would index protocol state that no longer exists.
  EXPECT_EQ(m->on_read_shared(0, a.data(), 8), 0u);
  EXPECT_EQ(m->proc_stats(0).reads, 0u);
}

}  // namespace
}  // namespace ptb
