// The paper's conclusions, end to end: per-platform winners and SPACE's
// overall performance portability (§6).
#include <gtest/gtest.h>

#include <map>

#include "harness/experiment.hpp"

namespace ptb {
namespace {

class PortabilityMatrix : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new ExperimentRunner();
    for (const char* platform :
         {"challenge", "origin2000", "typhoon0_sc", "typhoon0_hlrc", "paragon"}) {
      for (Algorithm alg : all_algorithms()) {
        ExperimentSpec spec;
        spec.platform = platform;
        spec.algorithm = alg;
        spec.n = 4096;
        spec.nprocs = 16;
        spec.warmup_steps = 1;
        spec.measured_steps = 1;
        matrix_[{platform, alg}] = runner_->run(spec);
      }
    }
  }
  static void TearDownTestSuite() {
    delete runner_;
    runner_ = nullptr;
    matrix_.clear();
  }

  static double speedup(const std::string& platform, Algorithm a) {
    return matrix_.at({platform, a}).speedup;
  }
  static const ExperimentResult& res(const std::string& platform, Algorithm a) {
    return matrix_.at({platform, a});
  }

  static ExperimentRunner* runner_;
  static std::map<std::pair<std::string, Algorithm>, ExperimentResult> matrix_;
};

ExperimentRunner* PortabilityMatrix::runner_ = nullptr;
std::map<std::pair<std::string, Algorithm>, ExperimentResult>
    PortabilityMatrix::matrix_;

TEST_F(PortabilityMatrix, HardwareCoherentPlatformsAreForgiving) {
  // Paper Fig 6 / §4.1-4.2: on Challenge and Origin all five algorithms are
  // within a modest band of each other.
  for (const std::string platform : {"challenge", "origin2000"}) {
    double lo = 1e9, hi = 0;
    for (Algorithm a : all_algorithms()) {
      lo = std::min(lo, speedup(platform, a));
      hi = std::max(hi, speedup(platform, a));
    }
    EXPECT_LT(hi / lo, 1.5) << platform;
    EXPECT_GT(lo, 8.0) << platform << ": all algorithms must scale well";
  }
}

TEST_F(PortabilityMatrix, SvmPlatformsPunishLocks) {
  // Paper Figs 12/13: on both SVM machines the lock-free SPACE wins and the
  // lock-per-particle algorithms trail badly.
  for (const std::string platform : {"typhoon0_hlrc", "paragon"}) {
    EXPECT_GT(speedup(platform, Algorithm::kSpace),
              1.8 * speedup(platform, Algorithm::kOrig))
        << platform;
    EXPECT_GE(speedup(platform, Algorithm::kSpace),
              0.9 * speedup(platform, Algorithm::kPartree))
        << platform << ": SPACE at least on par with PARTREE";
  }
}

TEST_F(PortabilityMatrix, TreeBuildShareOrdering) {
  // Paper Figs 12/13: with lock-heavy builds nearly all time goes to tree
  // building; SPACE keeps it modest.
  for (const std::string platform : {"typhoon0_hlrc", "paragon"}) {
    EXPECT_GT(res(platform, Algorithm::kOrig).treebuild_fraction, 0.45) << platform;
    EXPECT_LT(res(platform, Algorithm::kSpace).treebuild_fraction, 0.40) << platform;
    EXPECT_GT(res(platform, Algorithm::kOrig).treebuild_fraction,
              res(platform, Algorithm::kSpace).treebuild_fraction)
        << platform;
  }
}

TEST_F(PortabilityMatrix, SpaceIsTheMostPortable) {
  // Paper §6: "the new algorithm has by far the best overall performance
  // portability across all systems... dramatically better on commodity
  // systems when it is better, and not much worse on other systems when it
  // is worse." Metric: worst-case ratio to the per-platform best.
  std::map<Algorithm, double> worst_ratio;
  for (Algorithm a : all_algorithms()) worst_ratio[a] = 1.0;
  for (const std::string platform :
       {"challenge", "origin2000", "typhoon0_sc", "typhoon0_hlrc", "paragon"}) {
    double best = 0;
    for (Algorithm a : all_algorithms()) best = std::max(best, speedup(platform, a));
    for (Algorithm a : all_algorithms())
      worst_ratio[a] = std::max(worst_ratio[a], best / speedup(platform, a));
  }
  // SPACE must decisively beat the lock-per-particle algorithms in
  // worst-case portability and never be far from the per-platform best.
  // (PARTREE — the paper's runner-up — comes out comparably portable in our
  // model at small sizes; see EXPERIMENTS.md "deviations".)
  for (Algorithm a : {Algorithm::kOrig, Algorithm::kLocal, Algorithm::kUpdate}) {
    EXPECT_LT(worst_ratio[Algorithm::kSpace], worst_ratio[a])
        << "SPACE must be more portable than " << algorithm_name(a);
  }
  EXPECT_LT(worst_ratio[Algorithm::kSpace], 1.5);
}

TEST_F(PortabilityMatrix, SequentialTimesOrderedLikeTable1) {
  EXPECT_LT(res("origin2000", Algorithm::kLocal).seq_seconds,
            res("challenge", Algorithm::kLocal).seq_seconds);
  EXPECT_LT(res("challenge", Algorithm::kLocal).seq_seconds,
            res("typhoon0_hlrc", Algorithm::kLocal).seq_seconds);
  EXPECT_LT(res("typhoon0_hlrc", Algorithm::kLocal).seq_seconds,
            res("paragon", Algorithm::kLocal).seq_seconds);
}

}  // namespace
}  // namespace ptb
