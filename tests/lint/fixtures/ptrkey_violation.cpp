// Planted violation for ptr-key-order: an ordered container keyed by a raw
// pointer iterates in allocation-address order, which varies run to run.
// ptblint-path: src/treebuild/fixture_ptrkey.cpp
// ptblint-expect: ptr-key-order 2 0
#include <map>
#include <set>

namespace ptb {

struct Node {
  int id;
};

struct Owners {
  std::map<Node*, int> owner_of;       // finding: pointer key, default less<>
  std::set<const Node*> visited;       // finding: pointer key, default less<>
};

}  // namespace ptb
