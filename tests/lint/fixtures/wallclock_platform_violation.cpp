// Planted violations proving src/platform is covered by the wall-clock
// check: platform specs feed every virtual-time charge, so "calibrating"
// them from host time or entropy would silently break run-to-run
// determinism. Never compiled — linted only.
// ptblint-path: src/platform/fixture_wallclock.cpp
// ptblint-expect: wall-clock 2 0
#include <chrono>
#include <random>

namespace ptb {

double bad_calibrated_ns_per_work() {
  // Finding: host-clock "calibration" of a platform constant.
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count() % 10);
}

double bad_jittered_latency(double base_ns) {
  std::random_device rd;  // finding: host entropy in a platform model
  return base_ns + static_cast<double>(rd() % 8);
}

}  // namespace ptb
