// Planted violations for addr-stream: formatting host addresses into
// observable output (reports, JSON) breaks cross-process reproducibility —
// this is the bug class the race reports' old "lock@0x..." fallback had.
// ptblint-path: src/race/fixture_addrstream.cpp
// ptblint-expect: addr-stream 3 0
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace ptb {

void report_printf(const void* p) {
  std::printf("racy object at %p\n", p);  // finding
}

void report_stream(const void* lock, std::ostringstream& os) {
  os << "lock@0x" << std::hex << lock;  // finding: pointer streamed in hex
}

void report_cast(const void* p, std::ostringstream& os) {
  os << reinterpret_cast<std::uintptr_t>(p);  // finding: integer-cast address
}

}  // namespace ptb
