// Planted violations proving a nominally lock-free builder is still scanned
// by the raw-lock check: RADIX (src/treebuild/radix.hpp) advertises zero
// detail::maybe_lock sites, and this fixture shows that if someone later
// sneaks a raw rt.lock() into a file on the same policy path, the linter
// flags it rather than trusting the "lock-free" label. Never compiled.
// ptblint-path: src/treebuild/fixture_radix_rawlock.cpp
// ptblint-expect: raw-lock 2 0

namespace ptb {

struct FakeRt {
  void lock(const void*) {}
  void unlock(const void*) {}
};

template <class RT>
void claim_segment_badly(RT& rt, const void* cursor_lock) {
  rt.lock(cursor_lock);    // finding: a "lock-free" builder growing a lock
  rt.unlock(cursor_lock);  // finding: ditto
}

}  // namespace ptb
