// Planted violations for the wall-clock check: deterministic code (policy
// path puts this in src/sim) reading host time/entropy. Never compiled —
// linted only (see tests/lint/run_lint_tests.py).
// ptblint-path: src/sim/fixture_wallclock.cpp
// ptblint-expect: wall-clock 4 0
#include <chrono>
#include <cstdlib>
#include <random>

namespace ptb {

std::uint64_t bad_virtual_now() {
  // One finding: the clock type and its ::now() are one source.
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

std::uint64_t bad_seed() {
  std::random_device rd;  // finding: host entropy
  return rd();
}

int bad_jitter() {
  std::srand(42);   // finding: hidden global PRNG state
  return rand() %  // finding: draws from it
         7;
}

}  // namespace ptb
