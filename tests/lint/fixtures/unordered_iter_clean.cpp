// Clean counterpart of unordered_iter_violation.cpp: point lookups into
// unordered containers are fine, and ordered containers may be iterated.
// ptblint-path: src/sim/fixture_unordered_clean.cpp
// ptblint-expect: unordered-iter 0 0
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace ptb {

struct WaitTable {
  std::unordered_map<std::uint64_t, int> waiters;
  std::map<std::uint64_t, int> by_time;

  int lookup(std::uint64_t addr) const {
    auto it = waiters.find(addr);  // point lookup: no iteration order
    return it != waiters.end() ? it->second : 0;
  }

  std::vector<std::uint64_t> drain_ordered() const {
    std::vector<std::uint64_t> out;
    for (const auto& [t, n] : by_time) out.push_back(t);  // total order
    return out;
  }
};

}  // namespace ptb
