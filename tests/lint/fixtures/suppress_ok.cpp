// Suppression mechanics: a reasoned allow() silences the finding, and the
// JSON output counts it as suppressed (asserted by the runner).
// ptblint-path: src/sim/fixture_suppress_ok.cpp
// ptblint-expect: wall-clock 0 2
// ptblint-expect: suppress-reason 0 0
#include <chrono>
#include <cstdint>

namespace ptb {

std::uint64_t host_now_for_logging() {
  return static_cast<std::uint64_t>(std::chrono::steady_clock::now().time_since_epoch().count());  // ptblint: allow(wall-clock) -- fixture: reasoned suppression on the offending line
}

// ptblint: allow(wall-clock) -- fixture: comment-line suppression applies to the next code line
using HostClock = std::chrono::system_clock;

}  // namespace ptb
