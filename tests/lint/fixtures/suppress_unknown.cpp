// Suppression mechanics: allow() naming a check that does not exist is a
// finding (typo protection: a misspelled check id must not silently
// suppress nothing).
// ptblint-path: src/sim/fixture_suppress_unknown.cpp
// ptblint-expect: suppress-unknown 1 0
#include <cstdint>

namespace ptb {

// ptblint: allow(wallclock-read) -- misspelled check id
std::uint64_t identity(std::uint64_t x) { return x; }

}  // namespace ptb
