// Clean counterpart of rawlock_violation.cpp: the gate functions themselves
// are the one sanctioned direct-lock site, and builder code calls them.
// ptblint-path: src/treebuild/fixture_rawlock_clean.cpp
// ptblint-expect: raw-lock 0 0

namespace ptb {

struct BHConfig {
  bool elide_locks = false;
};

namespace detail {

// The gate: the only functions allowed to touch rt.lock directly.
template <class RT>
void maybe_lock(RT& rt, const BHConfig& cfg, const void* lk) {
  if (!cfg.elide_locks) rt.lock(lk);
}
template <class RT>
void maybe_unlock(RT& rt, const BHConfig& cfg, const void* lk) {
  if (!cfg.elide_locks) rt.unlock(lk);
}

}  // namespace detail

template <class RT>
void insert_shared(RT& rt, const BHConfig& cfg, const void* lk) {
  detail::maybe_lock(rt, cfg, lk);
  detail::maybe_unlock(rt, cfg, lk);
}

}  // namespace ptb
