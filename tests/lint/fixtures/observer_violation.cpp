// Planted violations for observer-mutation: observer layers (policy path
// puts this in src/prof) must be pure readers of simulator state.
// ptblint-path: src/prof/fixture_observer.cpp
// ptblint-expect: observer-mutation 3 0
#include <cstdint>

namespace ptb {

class SimContext;
class SimProc;

namespace prof {

struct EvilRecorder {
  SimContext* ctx = nullptr;  // finding: non-const SimContext handle

  void on_lock_grant(SimProc& proc);  // finding: non-const SimProc handle

  void scribble(const void* p, std::uint64_t v) {
    // finding: const_cast to write through a hook argument into
    // simulation-owned memory
    *const_cast<std::uint64_t*>(static_cast<const std::uint64_t*>(p)) = v;
  }
};

}  // namespace prof
}  // namespace ptb
