// Clean counterpart of ptrkey_violation.cpp: stable-id keys, or an explicit
// deterministic comparator, make ordered iteration reproducible.
// ptblint-path: src/treebuild/fixture_ptrkey_clean.cpp
// ptblint-expect: ptr-key-order 0 0
#include <cstdint>
#include <map>
#include <set>

namespace ptb {

struct Node {
  std::uint32_t id;
};

struct ByNodeId {
  bool operator()(const Node* a, const Node* b) const { return a->id < b->id; }
};

struct Owners {
  std::map<std::uint32_t, int> owner_of;        // stable-id key
  std::set<const Node*, ByNodeId> visited;      // explicit total order
  std::map<Node*, int, ByNodeId> depth_of;      // explicit total order
};

}  // namespace ptb
