// Planted violations for raw-lock: builder code acquiring a runtime lock
// directly instead of through detail::maybe_lock, so --elide-locks fault
// injection would silently miss this site.
// ptblint-path: src/treebuild/fixture_rawlock.cpp
// ptblint-expect: raw-lock 2 0

namespace ptb {

struct FakeRt {
  void lock(const void*) {}
  void unlock(const void*) {}
};

template <class RT>
void insert_shared(RT& rt, const void* lk) {
  rt.lock(lk);    // finding: bypasses detail::maybe_lock
  rt.unlock(lk);  // finding: bypasses detail::maybe_unlock
}

}  // namespace ptb
