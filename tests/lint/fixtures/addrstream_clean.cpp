// Clean counterpart of addrstream_violation.cpp: report region+offset or a
// deterministic intern id, never the host address.
// ptblint-path: src/race/fixture_addrstream_clean.cpp
// ptblint-expect: addr-stream 0 0
#include <cstdint>
#include <sstream>
#include <string>

namespace ptb {

void report_location(const std::string& region, std::size_t offset,
                     std::ostringstream& os) {
  os << region << "+" << offset;
}

void report_intern(int lock_id, std::ostringstream& os) {
  os << "lock#" << lock_id;
}

}  // namespace ptb
