// Clean counterpart of wallclock_violation.cpp: deterministic code taking
// time from the virtual clock and entropy from the seeded generator.
// ptblint-path: src/sim/fixture_wallclock_clean.cpp
// ptblint-expect: wall-clock 0 0
#include <cstdint>

namespace ptb {

struct SimClockRef {
  std::uint64_t now_ns;
};

std::uint64_t good_virtual_now(const SimClockRef& clk) { return clk.now_ns; }

// Mentioning steady_clock in a comment (like this one) must not fire.
std::uint64_t good_random(std::uint64_t seed) {
  std::uint64_t z = (seed += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return z ^ (z >> 31);
}

const char* describe() { return "uses std::chrono::system_clock::now()"; }

}  // namespace ptb
