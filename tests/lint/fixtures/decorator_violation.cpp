// Planted violations for decorator-latency: a MemModel decorator outside
// src/mem/ that perturbs, replaces, or drops the inner model's latency on
// some hook. All four failure shapes are planted.
// ptblint-path: src/trace/fixture_decorator.cpp
// ptblint-expect: decorator-latency 4 0
#include <cstddef>
#include <cstdint>
#include <memory>

namespace ptb {

// Minimal stand-in for src/mem/model.hpp so the fixture is a valid TU for
// the Clang AST engine as well as the lexical one.
class MemModel {
 public:
  virtual ~MemModel() = default;
  virtual std::uint64_t on_read(int, const void*, std::size_t, std::uint64_t) = 0;
  virtual std::uint64_t on_write(int, const void*, std::size_t, std::uint64_t) = 0;
  virtual std::uint64_t on_rmw(int, const void*, std::uint64_t) = 0;
  virtual std::uint64_t on_acquire(int, const void*, std::uint64_t) = 0;
};

class SkewModel final : public MemModel {
 public:
  // Shape 1: arithmetic on the forwarded value.
  std::uint64_t on_read(int proc, const void* p, std::size_t n, std::uint64_t now) {
    return inner_->on_read(proc, p, n, now) + 5;
  }

  // Shape 2: forwarded value stored, then modified before return.
  std::uint64_t on_write(int proc, const void* p, std::size_t n, std::uint64_t now) {
    std::uint64_t lat = inner_->on_write(proc, p, n, now);
    lat /= 2;
    return lat;
  }

  // Shape 3: forwarded value discarded, something else returned.
  std::uint64_t on_rmw(int proc, const void* p, std::uint64_t now) {
    inner_->on_rmw(proc, p, now);
    return 100;
  }

  // Shape 4: hook never consults the inner model at all.
  std::uint64_t on_acquire(int proc, const void* lock, std::uint64_t now) {
    (void)proc;
    (void)lock;
    (void)now;
    return 0;
  }

 private:
  std::unique_ptr<MemModel> inner_;
};

}  // namespace ptb
