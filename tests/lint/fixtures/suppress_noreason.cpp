// Suppression mechanics: an allow() WITHOUT a reason string is itself a
// finding, and it does not silence the violation it points at.
// ptblint-path: src/sim/fixture_suppress_noreason.cpp
// ptblint-expect: suppress-reason 1 0
// ptblint-expect: wall-clock 1 0
#include <chrono>
#include <cstdint>

namespace ptb {

// ptblint: allow(wall-clock)
using HostClock = std::chrono::steady_clock;

}  // namespace ptb
