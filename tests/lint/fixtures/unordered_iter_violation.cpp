// Planted violations for unordered-iter: iteration over unordered containers
// escapes hash-order into results.
// ptblint-path: src/sim/fixture_unordered.cpp
// ptblint-expect: unordered-iter 3 0
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ptb {

struct WaitTable {
  std::unordered_map<std::uint64_t, int> waiters;
  std::unordered_set<const void*> seen;

  std::vector<std::uint64_t> drain() const {
    std::vector<std::uint64_t> out;
    for (const auto& [addr, n] : waiters) out.push_back(addr);  // finding
    return out;
  }

  const void* first() const {
    return *seen.begin();  // finding: begin() order is hash-dependent
  }
};

std::uint64_t inline_iteration() {
  std::uint64_t acc = 1;
  for (int v : std::unordered_set<int>{1, 2, 3}) acc = acc * 31 + static_cast<std::uint64_t>(v);  // finding
  return acc;
}

}  // namespace ptb
