// Clean counterpart of decorator_violation.cpp: the decorator observes, then
// returns the inner model's latency untouched on every hook (the RaceModel /
// SightModel idiom).
// ptblint-path: src/trace/fixture_decorator_clean.cpp
// ptblint-expect: decorator-latency 0 0
#include <cstddef>
#include <cstdint>
#include <memory>

namespace ptb {

// Minimal stand-in for src/mem/model.hpp so the fixture is a valid TU for
// the Clang AST engine as well as the lexical one.
class MemModel {
 public:
  virtual ~MemModel() = default;
  virtual std::uint64_t on_read(int, const void*, std::size_t, std::uint64_t) = 0;
  virtual std::uint64_t on_write(int, const void*, std::size_t, std::uint64_t) = 0;
};

class PureObserverModel final : public MemModel {
 public:
  // Direct forwarding.
  std::uint64_t on_read(int proc, const void* p, std::size_t n, std::uint64_t now) {
    note(proc);
    return inner_->on_read(proc, p, n, now);
  }

  // Store-then-return passthrough is also fine.
  std::uint64_t on_write(int proc, const void* p, std::size_t n, std::uint64_t now) {
    const std::uint64_t lat = inner_->on_write(proc, p, n, now);
    note(proc);
    return lat;
  }

 private:
  void note(int proc) { counts_[proc] += 1; }

  std::unique_ptr<MemModel> inner_;
  std::uint64_t counts_[64] = {};
};

}  // namespace ptb
