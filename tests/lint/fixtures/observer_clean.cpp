// Clean counterpart of observer_violation.cpp: observers take const handles
// and only read state the simulator already computed.
// ptblint-path: src/prof/fixture_observer_clean.cpp
// ptblint-expect: observer-mutation 0 0
#include <cstdint>
#include <vector>

namespace ptb {

class SimContext;

namespace prof {

struct GoodRecorder {
  const SimContext* ctx = nullptr;  // const handle: read-only

  std::vector<std::uint64_t> samples;

  void on_lock_grant(int proc, std::uint64_t now_ns) {
    // Observers may freely mutate their OWN state.
    samples.push_back(now_ns + static_cast<std::uint64_t>(proc));
  }
};

}  // namespace prof
}  // namespace ptb
