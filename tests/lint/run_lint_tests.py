#!/usr/bin/env python3
"""Fixture harness for ptblint (tools/ptblint/).

Each fixture under tests/lint/fixtures/ carries its own oracle:

    // ptblint-path: src/sim/fixture_x.cpp          <- policy path override
    // ptblint-expect: wall-clock 3 1               <- check, unsuppressed, suppressed

The harness lints every fixture in one ptblint invocation and compares the
JSON findings against the embedded expectations, per fixture file and per
check (checks not named in any ptblint-expect line of a fixture are expected
to report nothing for it — a planted violation must never leak findings of
the wrong class).

Engine selection: PTBLINT env var can point at an alternative engine command
(e.g. the Clang LibTooling binary built with -DPTB_BUILD_LINT=ON); default is
the portable python engine. Both must satisfy the same oracle.

Exit 0 on success, 1 with a diff on any mismatch.
"""

import argparse
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "fixtures")
EXPECT_RE = re.compile(r"ptblint-expect:\s*([\w-]+)\s+(\d+)\s+(\d+)")


def read_expectations(path):
    exp = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            m = EXPECT_RE.search(line)
            if m:
                exp[m.group(1)] = (int(m.group(2)), int(m.group(3)))
    return exp


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--engine", default=os.environ.get("PTBLINT"),
                    help="engine command (default: the python reference engine; "
                         "also honours the PTBLINT env var)")
    args = ap.parse_args()
    if args.engine:
        cmd = shlex.split(args.engine)
    else:
        cmd = [sys.executable, os.path.join(ROOT, "tools", "ptblint", "ptblint.py")]

    fixtures = sorted(
        os.path.join(FIXTURES, f) for f in os.listdir(FIXTURES) if f.endswith(".cpp"))
    if not fixtures:
        print("no fixtures found under", FIXTURES)
        return 1

    with tempfile.TemporaryDirectory() as td:
        out_json = os.path.join(td, "findings.json")
        proc = subprocess.run(
            cmd + ["--root", ROOT, "--json", out_json, "--quiet"] + fixtures,
            capture_output=True, text=True)
        # Exit 1 (unsuppressed findings) is the expected outcome over planted
        # violations; anything else is an engine failure.
        if proc.returncode not in (0, 1):
            print("ptblint failed:", proc.returncode)
            print(proc.stdout)
            print(proc.stderr)
            return 1
        with open(out_json, encoding="utf-8") as fh:
            doc = json.load(fh)

    # Tally findings per (fixture basename, check).
    got = {}
    for f in doc["findings"]:
        key = (os.path.basename(f["file"]), f["check"])
        uns, sup = got.get(key, (0, 0))
        if f["suppressed"]:
            got[key] = (uns, sup + 1)
        else:
            got[key] = (uns + 1, sup)

    failures = []
    checks_seen = set(doc["checks"])
    total_expected_unsuppressed = 0
    for fx in fixtures:
        base = os.path.basename(fx)
        exp = read_expectations(fx)
        unknown = set(exp) - checks_seen
        if unknown:
            failures.append(f"{base}: expectation names unknown check(s): {sorted(unknown)}")
        for check in checks_seen:
            want = exp.get(check, (0, 0))
            have = got.pop((base, check), (0, 0))
            total_expected_unsuppressed += want[0]
            if want != have:
                failures.append(
                    f"{base}: check {check}: expected {want[0]} unsuppressed /"
                    f" {want[1]} suppressed, got {have[0]} / {have[1]}")
    for (base, check), have in sorted(got.items()):
        failures.append(f"{base}: unexpected findings for {check}: {have}")

    # The planted violations must also drive the exit code.
    if total_expected_unsuppressed > 0 and proc.returncode != 1:
        failures.append(
            f"expected exit code 1 over planted violations, got {proc.returncode}")

    # JSON count block must agree with the findings list.
    uns = sum(1 for f in doc["findings"] if not f["suppressed"])
    sup = sum(1 for f in doc["findings"] if f["suppressed"])
    c = doc["counts"]
    if (c["unsuppressed"], c["suppressed"], c["total"]) != (uns, sup, uns + sup):
        failures.append(f"counts block inconsistent with findings list: {c}")
    # Suppressed findings must carry their reason through to the JSON.
    for f in doc["findings"]:
        if f["suppressed"] and not f["reason"]:
            failures.append(f"suppressed finding without a reason in JSON: {f}")

    if failures:
        print(f"ptblint fixture harness: {len(failures)} failure(s)")
        for msg in failures:
            print("  FAIL:", msg)
        return 1
    nf = len(doc["findings"])
    print(f"ptblint fixture harness: {len(fixtures)} fixtures, {nf} findings, "
          f"all expectations met (engine: {doc.get('engine', '?')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
