// The stackful fiber primitive underneath the cooperative DES backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/fiber.hpp"

namespace ptb {
namespace {

struct PingPong {
  Fiber host;
  Fiber worker;
  std::vector<int> events;
  int rounds = 0;
};

void ping_pong_entry(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  for (int i = 0; i < pp->rounds; ++i) {
    pp->events.push_back(100 + i);
    Fiber::switch_to(pp->worker, pp->host);
  }
  pp->events.push_back(999);
  Fiber::switch_to(pp->worker, pp->host);  // final: never resumed again
}

TEST(Fiber, PingPongInterleavesDeterministically) {
  PingPong pp;
  pp.rounds = 3;
  pp.worker.start(&ping_pong_entry, &pp, 256 * 1024);
  for (int i = 0; i < pp.rounds; ++i) {
    pp.events.push_back(i);
    Fiber::switch_to(pp.host, pp.worker);
  }
  Fiber::switch_to(pp.host, pp.worker);  // let it run to its final switch
  EXPECT_EQ(pp.events, (std::vector<int>{0, 100, 1, 101, 2, 102, 999}));
}

struct Chain {
  std::vector<Fiber> fibers;
  Fiber host;
  std::vector<int> order;
  int next = 0;
};

struct ChainArg {
  Chain* chain;
  int id;
};

void chain_entry(void* arg) {
  auto* ca = static_cast<ChainArg*>(arg);
  Chain& c = *ca->chain;
  // Deep-ish stack use to verify each fiber really has its own stack.
  volatile char scratch[16 * 1024];
  scratch[0] = static_cast<char>(ca->id);
  scratch[sizeof(scratch) - 1] = static_cast<char>(ca->id);
  c.order.push_back(ca->id + scratch[0] - scratch[sizeof(scratch) - 1]);
  const int nxt = ++c.next;
  if (nxt < static_cast<int>(c.fibers.size()))
    Fiber::switch_to(c.fibers[static_cast<std::size_t>(ca->id)],
                     c.fibers[static_cast<std::size_t>(nxt)]);
  else
    Fiber::switch_to(c.fibers[static_cast<std::size_t>(ca->id)], c.host);
}

TEST(Fiber, ChainOfFibersEachWithOwnStack) {
  constexpr int kN = 8;
  Chain c;
  c.fibers = std::vector<Fiber>(kN);
  std::vector<ChainArg> args;
  for (int i = 0; i < kN; ++i) args.push_back(ChainArg{&c, i});
  for (int i = 0; i < kN; ++i)
    c.fibers[static_cast<std::size_t>(i)].start(&chain_entry,
                                               &args[static_cast<std::size_t>(i)],
                                               128 * 1024);
  Fiber::switch_to(c.host, c.fibers[0]);
  EXPECT_EQ(c.order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Fiber, LocalsSurviveSuspension) {
  struct State {
    Fiber host, f;
    double acc = 0.0;
  } st;
  static auto entry = [](void* a) {
    auto* s = static_cast<State*>(a);
    double x = 1.5;        // must survive the suspensions below
    std::uint64_t y = 42;  // exercises both integer and FP callee state
    for (int i = 0; i < 4; ++i) {
      x *= 2.0;
      y += 1;
      Fiber::switch_to(s->f, s->host);
    }
    s->acc = x + static_cast<double>(y);
    Fiber::switch_to(s->f, s->host);
  };
  st.f.start(+[](void* a) { entry(a); }, &st, 128 * 1024);
  for (int i = 0; i < 5; ++i) Fiber::switch_to(st.host, st.f);
  EXPECT_DOUBLE_EQ(st.acc, 1.5 * 16.0 + 46.0);
}

}  // namespace
}  // namespace ptb
