// Region table: address resolution, home policies, block ranges.
#include <gtest/gtest.h>

#include <vector>

#include "mem/region_table.hpp"

namespace ptb {
namespace {

TEST(RegionTable, UnregisteredIsPrivate) {
  RegionTable t;
  t.set_block_bytes(64);
  int x = 0;
  EXPECT_FALSE(t.resolve(&x, 4).shared);
}

TEST(RegionTable, ResolveInsideRegion) {
  RegionTable t;
  t.set_block_bytes(64);
  std::vector<char> buf(1024);
  t.add(buf.data(), buf.size(), HomePolicy::kFixed, 2, "buf", 4);
  const BlockRef r = t.resolve(buf.data() + 100, 4);
  EXPECT_TRUE(r.shared);
  EXPECT_EQ(r.home, 2);
  EXPECT_FALSE(t.resolve(buf.data() + 2000, 4).shared);
}

TEST(RegionTable, BlockIndicesFollowAddressGrid) {
  RegionTable t;
  t.set_block_bytes(64);
  std::vector<char> buf(640);
  t.add(buf.data(), buf.size(), HomePolicy::kFixed, 0, "buf", 4);
  const auto a = t.resolve(buf.data(), 4);
  const auto b = t.resolve(buf.data() + 63, 4);    // may or may not share a block
  const auto c = t.resolve(buf.data() + 256, 4);
  EXPECT_TRUE(a.shared && b.shared && c.shared);
  EXPECT_GE(c.block, a.block + 3);  // 256 bytes ahead = at least 4 blocks - 1
  EXPECT_LE(b.block - a.block, 1u);
}

TEST(RegionTable, InterleavedHomesCycle) {
  RegionTable t;
  t.set_block_bytes(64);
  // Align the buffer so block boundaries are predictable.
  alignas(64) static char buf[64 * 8];
  t.add(buf, sizeof(buf), HomePolicy::kInterleavedBlock, 0, "buf", 4);
  std::vector<int> homes;
  for (int i = 0; i < 8; ++i) homes.push_back(t.resolve(buf + i * 64, 4).home);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(homes[static_cast<std::size_t>(i)], i % 4);
}

TEST(RegionTable, ProcStripedSplitsEvenly) {
  RegionTable t;
  t.set_block_bytes(64);
  alignas(64) static char buf[64 * 8];
  t.add(buf, sizeof(buf), HomePolicy::kProcStriped, 0, "buf", 4);
  EXPECT_EQ(t.resolve(buf + 0, 4).home, 0);
  EXPECT_EQ(t.resolve(buf + 64 * 2, 4).home, 1);
  EXPECT_EQ(t.resolve(buf + 64 * 7, 4).home, 3);
}

TEST(RegionTable, ResolveRangeSpansBlocks) {
  RegionTable t;
  t.set_block_bytes(64);
  alignas(64) static char buf[64 * 4];
  t.add(buf, sizeof(buf), HomePolicy::kFixed, 1, "buf", 2);
  std::size_t first, last;
  int home;
  ASSERT_TRUE(t.resolve_range(buf + 60, 10, 2, first, last, home));
  EXPECT_EQ(last, first + 1);  // crosses one boundary
  EXPECT_EQ(home, 1);
  ASSERT_TRUE(t.resolve_range(buf + 0, 1, 2, first, last, home));
  EXPECT_EQ(last, first);
}

TEST(RegionTable, RangeClampsAtRegionEnd) {
  RegionTable t;
  t.set_block_bytes(64);
  alignas(64) static char buf[128];
  t.add(buf, sizeof(buf), HomePolicy::kFixed, 0, "buf", 2);
  std::size_t first, last;
  int home;
  ASSERT_TRUE(t.resolve_range(buf + 100, 4096, 2, first, last, home));
  EXPECT_EQ(last, first);  // clamped to the last block of the region
}

TEST(RegionTable, MultipleRegionsSorted) {
  RegionTable t;
  t.set_block_bytes(64);
  std::vector<char> a(256), b(256);
  t.add(a.data(), a.size(), HomePolicy::kFixed, 0, "a", 2);
  t.add(b.data(), b.size(), HomePolicy::kFixed, 1, "b", 2);
  EXPECT_EQ(t.resolve(a.data() + 10, 2).home, 0);
  EXPECT_EQ(t.resolve(b.data() + 10, 2).home, 1);
  EXPECT_GE(t.total_blocks(), 8u);
}

TEST(RegionTable, BlockHomeReverseLookup) {
  RegionTable t;
  t.set_block_bytes(64);
  alignas(64) static char buf[64 * 6];
  t.add(buf, sizeof(buf), HomePolicy::kInterleavedBlock, 0, "buf", 3);
  const auto r = t.resolve(buf + 64 * 4, 3);
  EXPECT_EQ(t.block_home(r.block, 3), r.home);
}

TEST(RegionTable, BlockHomeWhenRegistrationOrderDiffersFromAddressOrder) {
  // Global block indices follow registration order, while the region list is
  // kept sorted by base address. Registering the higher-addressed region
  // first makes the two orders disagree, which is exactly the case the
  // first_block-sorted lookup index exists for.
  RegionTable t;
  t.set_block_bytes(64);
  alignas(64) static char buf[64 * 8];
  t.add(buf + 64 * 4, 64 * 4, HomePolicy::kInterleavedBlock, 0, "high", 3);
  t.add(buf, 64 * 4, HomePolicy::kFixed, 2, "low", 3);
  for (std::size_t off = 0; off < sizeof(buf); off += 64) {
    const auto r = t.resolve(buf + off, 3);
    ASSERT_TRUE(r.shared);
    EXPECT_EQ(t.block_home(r.block, 3), r.home) << "offset " << off;
  }
  EXPECT_EQ(t.total_blocks(), 8u);
}

TEST(RegionTable, BlockHomeEdgeCasesOnASingleRegionTable) {
  RegionTable t;
  t.set_block_bytes(64);
  alignas(64) static char buf[64 * 5];
  t.add(buf, sizeof(buf), HomePolicy::kInterleavedBlock, 0, "buf", 3);
  ASSERT_EQ(t.total_blocks(), 5u);
  // First and last block of the only region.
  EXPECT_EQ(t.block_home(0, 3), 0);
  EXPECT_EQ(t.block_home(4, 3), 4 % 3);
  // One past the end: not owned by any region — the documented fallback is
  // home 0, never an out-of-bounds read.
  EXPECT_EQ(t.block_home(5, 3), 0);
  EXPECT_EQ(t.block_home(1000, 3), 0);
}

TEST(RegionTable, BlockHomeEdgeCasesAcrossRegionBoundaries) {
  RegionTable t;
  t.set_block_bytes(64);
  alignas(64) static char buf[64 * 8];
  // Registration order (which assigns global block indices) deliberately
  // disagrees with address order.
  t.add(buf + 64 * 4, 64 * 2, HomePolicy::kFixed, 2, "high", 4);  // blocks 0..1
  t.add(buf, 64 * 3, HomePolicy::kFixed, 1, "low", 4);            // blocks 2..4
  // First and last block of each region.
  EXPECT_EQ(t.block_home(0, 4), 2);
  EXPECT_EQ(t.block_home(1, 4), 2);
  EXPECT_EQ(t.block_home(2, 4), 1);
  EXPECT_EQ(t.block_home(4, 4), 1);
  // One past the last minted block.
  EXPECT_EQ(t.block_home(5, 4), 0);
  // An empty table never dereferences anything.
  RegionTable empty;
  empty.set_block_bytes(64);
  EXPECT_EQ(empty.block_home(0, 4), 0);
}

TEST(RegionTable, VirtualOffsetIsRegistrationRelative) {
  // The virtual offset must depend only on registration order and position
  // within the region — never on the regions' absolute addresses — so that
  // sub-block grids derived from it (the HLRC local cache's 64 B lines) give
  // bit-identical costs no matter where the allocator placed the regions.
  RegionTable t;
  t.set_block_bytes(64);
  alignas(64) static char buf[64 * 8];
  t.add(buf + 64 * 4, 64 * 4, HomePolicy::kFixed, 0, "first", 2);
  t.add(buf, 64 * 2, HomePolicy::kFixed, 1, "second", 2);
  std::size_t off = 0;
  // First-registered region starts the virtual space at 0...
  ASSERT_TRUE(t.virtual_offset(buf + 64 * 4, off));
  EXPECT_EQ(off, 0u);
  // ...offsets within a region advance byte by byte...
  ASSERT_TRUE(t.virtual_offset(buf + 64 * 4 + 67, off));
  EXPECT_EQ(off, 67u);
  // ...and the next registration continues after the previous blocks.
  ASSERT_TRUE(t.virtual_offset(buf + 1, off));
  EXPECT_EQ(off, 64u * 4 + 1);
  int x = 0;
  EXPECT_FALSE(t.virtual_offset(&x, off));
}

}  // namespace
}  // namespace ptb
