// ORB partitioning: completeness, balance, spatial structure, determinism,
// and end-to-end physics equivalence with costzones.
#include <gtest/gtest.h>

#include "harness/app.hpp"
#include "sim/sim_rt.hpp"
#include "support/stats.hpp"
#include "treebuild/local.hpp"

namespace ptb {
namespace {

AppState run_steps(Partitioner part, int n, int np, int steps) {
  BHConfig cfg;
  cfg.n = n;
  cfg.partitioner = part;
  AppState st = make_app_state(cfg, np);
  SimContext ctx(PlatformSpec::ideal(), np);
  register_common_regions(ctx, st);
  LocalBuilder builder(st);
  builder.register_regions(ctx);
  ctx.run([&](SimProc& rt) {
    for (int s = 0; s < steps; ++s) timestep(rt, st, builder, true);
  });
  return st;
}

TEST(Orb, EveryBodyAssignedExactlyOnce) {
  AppState st = run_steps(Partitioner::kOrb, 3000, 8, 1);
  std::vector<int> owners(3000, 0);
  for (int p = 0; p < 8; ++p)
    for (std::int32_t bi : st.partition[static_cast<std::size_t>(p)]) {
      ++owners[static_cast<std::size_t>(bi)];
      EXPECT_EQ(st.bodies[static_cast<std::size_t>(bi)].proc, p);
    }
  for (int c : owners) ASSERT_EQ(c, 1);
}

TEST(Orb, BalancesCost) {
  AppState st = run_steps(Partitioner::kOrb, 4000, 8, 2);  // step 2 uses real costs
  std::vector<double> zone_cost(8, 0.0);
  for (int p = 0; p < 8; ++p)
    for (std::int32_t bi : st.partition[static_cast<std::size_t>(p)])
      zone_cost[static_cast<std::size_t>(p)] +=
          std::max(1.0, st.bodies[static_cast<std::size_t>(bi)].cost);
  EXPECT_LT(imbalance_factor(zone_cost), 1.25);
}

TEST(Orb, BoxesAreSpatiallyDisjointish) {
  // ORB produces axis-aligned boxes: per-zone bounding boxes should overlap
  // far less than random assignment (we check total box volume against the
  // global bounding volume).
  AppState st = run_steps(Partitioner::kOrb, 4000, 8, 1);
  double total_vol = 0.0;
  Vec3 glo{1e300, 1e300, 1e300}, ghi{-1e300, -1e300, -1e300};
  for (int p = 0; p < 8; ++p) {
    Vec3 lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
    for (std::int32_t bi : st.partition[static_cast<std::size_t>(p)]) {
      const Vec3& q = st.bodies[static_cast<std::size_t>(bi)].pos;
      for (int d = 0; d < 3; ++d) {
        lo[d] = std::min(lo[d], q[d]);
        hi[d] = std::max(hi[d], q[d]);
        glo[d] = std::min(glo[d], q[d]);
        ghi[d] = std::max(ghi[d], q[d]);
      }
    }
    total_vol += (hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z);
  }
  const double global_vol = (ghi.x - glo.x) * (ghi.y - glo.y) * (ghi.z - glo.z);
  // Disjoint boxes would sum to <= global volume; allow some slack for
  // cost-weighted split boundaries.
  EXPECT_LT(total_vol, 1.5 * global_vol);
}

TEST(Orb, DeterministicAssignments) {
  AppState a = run_steps(Partitioner::kOrb, 2000, 8, 2);
  AppState b = run_steps(Partitioner::kOrb, 2000, 8, 2);
  for (int i = 0; i < 2000; ++i)
    ASSERT_EQ(a.bodies[static_cast<std::size_t>(i)].proc,
              b.bodies[static_cast<std::size_t>(i)].proc);
}

TEST(Orb, PhysicsMatchesCostzones) {
  // The partitioner only decides WHO computes a body; the trajectory must be
  // identical up to floating-point reassociation in leaf sums.
  AppState a = run_steps(Partitioner::kCostzones, 1500, 4, 3);
  AppState b = run_steps(Partitioner::kOrb, 1500, 4, 3);
  for (int i = 0; i < 1500; ++i) {
    ASSERT_LT(norm(a.bodies[static_cast<std::size_t>(i)].pos -
                   b.bodies[static_cast<std::size_t>(i)].pos),
              1e-9);
  }
}

TEST(Orb, HandlesFewerBodiesThanProcessors) {
  AppState st = run_steps(Partitioner::kOrb, 5, 8, 1);
  int assigned = 0;
  for (int p = 0; p < 8; ++p)
    assigned += static_cast<int>(st.partition[static_cast<std::size_t>(p)].size());
  EXPECT_EQ(assigned, 5);
}

}  // namespace
}  // namespace ptb
