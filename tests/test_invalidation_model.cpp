// Invalidation-protocol cost model (bus / directory / fine-grain SC):
// state transitions, local vs remote asymmetry, false-sharing behavior.
#include <gtest/gtest.h>

#include <memory>

#include "mem/invalidation_model.hpp"

namespace ptb {
namespace {

class DirectoryModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = PlatformSpec::origin2000();
    model_ = std::make_unique<InvalidationModel>(spec_, 4);
    model_->register_region(buf_, sizeof(buf_), HomePolicy::kFixed, 0, "buf");
  }

  PlatformSpec spec_;
  std::unique_ptr<InvalidationModel> model_;
  alignas(128) char buf_[128 * 16];
};

TEST_F(DirectoryModelTest, ColdReadMissLocalVsRemote) {
  // Home is proc 0: proc 0 pays local, proc 1 pays remote.
  const auto c0 = model_->on_read(0, buf_, 8, 0);
  const auto c1 = model_->on_read(1, buf_ + 128, 8, 0);
  EXPECT_EQ(c0, static_cast<std::uint64_t>(spec_.local_miss_ns));
  EXPECT_EQ(c1, static_cast<std::uint64_t>(spec_.remote_miss_ns));
}

TEST_F(DirectoryModelTest, ReadHitIsFree) {
  model_->on_read(0, buf_, 8, 0);
  EXPECT_EQ(model_->on_read(0, buf_, 8, 0), 0u);
}

TEST_F(DirectoryModelTest, WriteInvalidatesSharers) {
  model_->on_read(1, buf_, 8, 0);
  model_->on_read(2, buf_, 8, 0);
  // Proc 0 writes: pays invalidations for procs 1 and 2.
  const auto c = model_->on_write(0, buf_, 8, 0);
  EXPECT_GE(c, static_cast<std::uint64_t>(spec_.local_miss_ns +
                                          2 * spec_.inval_per_sharer_ns));
  // Their next reads miss again (coherence, not capacity).
  EXPECT_GT(model_->on_read(1, buf_, 8, 0), 0u);
  EXPECT_GT(model_->on_read(2, buf_, 8, 0), 0u);
  EXPECT_EQ(model_->proc_stats(0).invalidations_sent, 2u);
}

TEST_F(DirectoryModelTest, RepeatedOwnWritesAreFree) {
  model_->on_write(0, buf_, 8, 0);
  EXPECT_EQ(model_->on_write(0, buf_, 8, 0), 0u);  // exclusive-modified
}

TEST_F(DirectoryModelTest, DirtyRemoteCostsThreeHops) {
  model_->on_write(1, buf_, 8, 0);  // proc 1 owns the line dirty
  const auto c = model_->on_read(2, buf_, 8, 0);
  EXPECT_EQ(c, static_cast<std::uint64_t>(spec_.dirty_miss_ns));
}

TEST_F(DirectoryModelTest, FalseSharingPingPong) {
  // Two processors writing DIFFERENT words in the SAME line invalidate each
  // other every time.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(model_->on_write(0, buf_ + 0, 8, 0), 0u);
    EXPECT_GT(model_->on_write(1, buf_ + 64, 8, 0), 0u);  // same 128 B line
  }
  EXPECT_GE(model_->proc_stats(0).invalidations_sent, 3u);
  EXPECT_GE(model_->proc_stats(1).invalidations_sent, 3u);
}

TEST_F(DirectoryModelTest, DistinctLinesDoNotInterfere) {
  model_->on_write(0, buf_ + 0, 8, 0);
  model_->on_write(1, buf_ + 256, 8, 0);  // different line
  EXPECT_EQ(model_->on_write(0, buf_ + 0, 8, 0), 0u);
  EXPECT_EQ(model_->on_write(1, buf_ + 256, 8, 0), 0u);
}

TEST_F(DirectoryModelTest, MultiBlockAccessChargesPerBlock) {
  const auto c = model_->on_read(0, buf_, 128 * 3, 0);
  EXPECT_GE(c, static_cast<std::uint64_t>(3 * spec_.local_miss_ns));
}

TEST_F(DirectoryModelTest, RmwAlwaysPaysInterconnect) {
  model_->on_read(0, buf_, 8, 0);
  // Even cached, the fetch&add bypasses the silent-hit path.
  EXPECT_GT(model_->on_rmw(0, buf_, 0), 0u);
  EXPECT_EQ(model_->proc_stats(0).rmws, 1u);
}

TEST_F(DirectoryModelTest, PrivateMemoryIsFree) {
  int x = 0;
  EXPECT_EQ(model_->on_read(0, &x, 4, 0), 0u);
  EXPECT_EQ(model_->on_write(0, &x, 4, 0), 0u);
}

TEST_F(DirectoryModelTest, ReadSharedMatchesOrderedReadCosts) {
  const auto a = model_->on_read_shared(3, buf_ + 512, 8);
  EXPECT_EQ(a, static_cast<std::uint64_t>(spec_.remote_miss_ns));
  EXPECT_EQ(model_->on_read_shared(3, buf_ + 512, 8), 0u);  // now cached
}

TEST_F(DirectoryModelTest, BlockStateReflectsProtocol) {
  model_->on_read(2, buf_, 8, 0);
  auto s = model_->block_state(buf_);
  EXPECT_TRUE(s.shared_region);
  EXPECT_TRUE(s.sharers & (1ull << 2));
  model_->on_write(1, buf_, 8, 0);
  s = model_->block_state(buf_);
  EXPECT_EQ(s.owner, 1);
  EXPECT_EQ(s.sharers, 1ull << 1);
}

TEST(BusModelTest, UniformMissCost) {
  const PlatformSpec spec = PlatformSpec::challenge();
  InvalidationModel model(spec, 8);
  alignas(128) static char buf[128 * 8];
  model.register_region(buf, sizeof(buf), HomePolicy::kInterleavedBlock, 0, "buf");
  // On a bus everyone pays the same, wherever the "home" is.
  const auto c0 = model.on_read(0, buf, 8, 0);
  const auto c5 = model.on_read(5, buf + 128, 8, 0);
  EXPECT_EQ(c0, c5);
  EXPECT_GE(c0, static_cast<std::uint64_t>(spec.local_miss_ns));
}

TEST(FineGrainSCTest, SoftwareHandlersMakeMissesExpensive) {
  const PlatformSpec spec = PlatformSpec::typhoon0_sc();
  InvalidationModel model(spec, 4);
  alignas(64) static char buf[64 * 8];
  model.register_region(buf, sizeof(buf), HomePolicy::kFixed, 0, "buf");
  const auto remote = model.on_read(1, buf, 8, 0);
  const auto local = model.on_read(0, buf + 64, 8, 0);
  EXPECT_GT(remote, local * 5);  // software protocol round trip dominates
}

TEST(CapacityMissTest, SmallCacheRemisses) {
  PlatformSpec spec = PlatformSpec::origin2000();
  spec.cache_bytes = 4 * 128;  // 4 lines only
  InvalidationModel model(spec, 1);
  static std::vector<char> big(128 * 1024);
  model.register_region(big.data(), big.size(), HomePolicy::kFixed, 0, "big");
  for (int i = 0; i < 512; ++i) model.on_read(0, big.data() + i * 128, 8, 0);
  // Re-reading the first line misses again: capacity eviction.
  EXPECT_GT(model.on_read(0, big.data(), 8, 0), 0u);
  EXPECT_GE(model.proc_stats(0).read_misses, 513u);
}

}  // namespace
}  // namespace ptb
