// End-to-end application runs on the simulated platforms: phase accounting,
// warm-up exclusion, cross-platform cost ordering sanity.
#include <gtest/gtest.h>

#include "harness/app.hpp"
#include "sim/sim_rt.hpp"
#include "treebuild/local.hpp"
#include "treebuild/orig.hpp"
#include "treebuild/space.hpp"

namespace ptb {
namespace {

template <class Builder>
RunResult run_app(const std::string& platform, int n, int np, int warm = 1,
                  int measured = 1) {
  BHConfig cfg;
  cfg.n = n;
  AppState st = make_app_state(cfg, np);
  SimContext ctx(PlatformSpec::by_name(platform), np);
  Builder builder(st);
  return run_simulation(ctx, st, builder, RunConfig{warm, measured});
}

TEST(App, PhasesAllAccounted) {
  const RunResult r = run_app<LocalBuilder>("origin2000", 2000, 4);
  EXPECT_GT(r.phase(Phase::kTreeBuild), 0.0);
  EXPECT_GT(r.phase(Phase::kMoments), 0.0);
  EXPECT_GT(r.phase(Phase::kPartition), 0.0);
  EXPECT_GT(r.phase(Phase::kForces), 0.0);
  EXPECT_GT(r.phase(Phase::kUpdate), 0.0);
  EXPECT_GT(r.total_ns, 0.0);
  // Forces dominate a Barnes-Hut step (paper: >97% sequentially).
  EXPECT_GT(r.phase(Phase::kForces), 0.5 * r.total_ns);
}

TEST(App, WarmupExcludedFromTotals) {
  const RunResult one = run_app<LocalBuilder>("origin2000", 1500, 4, 1, 1);
  const RunResult three = run_app<LocalBuilder>("origin2000", 1500, 4, 3, 1);
  // More warm-up steps must not inflate the measured totals (~equal steps).
  EXPECT_LT(std::abs(one.total_ns - three.total_ns) / one.total_ns, 0.25);
}

TEST(App, MoreMeasuredStepsMoreTime) {
  const RunResult one = run_app<LocalBuilder>("origin2000", 1500, 4, 1, 1);
  const RunResult two = run_app<LocalBuilder>("origin2000", 1500, 4, 1, 2);
  EXPECT_GT(two.total_ns, 1.5 * one.total_ns);
}

TEST(App, SvmTreeBuildShareExplodesForOrig) {
  // The paper's core observation, end to end: on a page-based SVM platform
  // the lock-heavy ORIG build dwarfs everything; SPACE stays modest.
  const RunResult orig = run_app<OrigBuilder>("paragon", 2000, 8);
  const RunResult space = run_app<SpaceBuilder>("paragon", 2000, 8);
  EXPECT_GT(orig.treebuild_fraction(), 0.5);
  EXPECT_LT(space.treebuild_fraction(), 0.35);
  EXPECT_LT(space.total_ns, orig.total_ns / 2);
}

TEST(App, HardwareCoherentPlatformsTolerateOrig) {
  const RunResult orig = run_app<OrigBuilder>("challenge", 2000, 8);
  const RunResult space = run_app<SpaceBuilder>("challenge", 2000, 8);
  // On the Challenge the algorithms are within ~25% of each other.
  EXPECT_LT(orig.total_ns, 1.25 * space.total_ns);
  EXPECT_LT(space.total_ns, 1.25 * orig.total_ns);
}

TEST(App, BarrierWaitTracked) {
  const RunResult r = run_app<OrigBuilder>("origin2000", 2000, 8);
  double wait = 0;
  for (const auto& ps : r.proc_stats) wait += ps.barrier_wait_ns;
  EXPECT_GT(wait, 0.0);
}

TEST(App, DeterministicEndToEnd) {
  const RunResult a = run_app<OrigBuilder>("typhoon0_hlrc", 1200, 4);
  const RunResult b = run_app<OrigBuilder>("typhoon0_hlrc", 1200, 4);
  EXPECT_DOUBLE_EQ(a.total_ns, b.total_ns);
  for (int ph = 0; ph < kNumPhases; ++ph)
    EXPECT_DOUBLE_EQ(a.phase_ns[static_cast<std::size_t>(ph)],
                     b.phase_ns[static_cast<std::size_t>(ph)]);
}

}  // namespace
}  // namespace ptb
